"""Flow-hash partitioned fan-out: one front-end, N detector instances.

:class:`FlowPartitioner` is the scale-out layer above
:class:`~repro.serve.runtime.ParallelStreamingDetector`: where the runtime
fans packets to shard workers *inside* one host, the partitioner hashes each
:class:`~repro.netstack.flow.FlowKey` once and fans packet blocks to N
detector **instances** over sockets — local processes spawned on demand, or
remote hosts reached by ``host:port`` endpoint.  The wire protocol
(:mod:`repro.serve.wire`) reuses the NDJSON pipe formats for control,
events and object packets, and a length-prefixed binary frame carrying
:meth:`~repro.netstack.columns.PacketColumns.pack_block` payloads for
columnar data, so a capture block crosses the socket packed exactly once
per instance and is never re-parsed.

The transport mirrors the process-mode runtime message for message: capture
blocks are broadcast to every instance on first sight and re-broadcast when
they leave the FIFO window, per-instance row slices ride ``ROWS`` frames
with their routed stream clocks (so every instance's flow-table timers fire
exactly as one unpartitioned detector's would), and buffered rows are
chunked under the same :class:`~repro.serve.metrics.AdaptiveChunker` the
runtime uses — a socket whose send buffer is full is the backpressure
signal.  Interim events stream back as ``EVNT`` frames and are drained
before every send, so the front-end never deadlocks against an instance
that is itself blocked sending events.  :meth:`close` merges every
instance's final drain into the deterministic ``(first_seen, key)`` order —
on a time-ordered capture the merged event stream matches a
single-instance detector's scores within 1e-9 at any instance count
(``tests/serve/test_partition.py``, ``tools/partition_smoke.py``).

Fault tolerance
---------------
Every socket operation runs under an ``io_deadline`` and every instance
failure (dead peer, torn frame, wire timeout) is routed through one policy,
``on_instance_failure``:

``fail``
    Record the loss, tear the whole fleet down (no leaked processes), and
    raise :class:`~repro.serve.supervise.InstanceFailure` (a
    ``ConnectionError``, so the CLI exits 2).
``respawn``
    Locally spawned instances are restarted (bounded by ``max_respawns``
    per instance) and remote endpoints reconnected under a deterministic
    :class:`~repro.serve.supervise.Backoff`; the live block window is
    re-shipped to the new incarnation and unsent buffered rows are
    requeued.  Packets in flight inside the dead incarnation are lost and
    attributed; with none in flight the stream is score-identical to an
    unfaulted run.  Budget exhaustion escalates to ``degrade``.
``degrade``
    The lost instance's hash slots are rehashed to the survivors, future
    flows on those slots carry ``DetectionResult.degraded=True``, typed
    :class:`~repro.serve.events.InstanceLost` /
    :class:`~repro.serve.events.DegradedMode` service events are emitted
    (drain with :meth:`service_events`), and :meth:`close` completes and
    returns the surviving events instead of raising.

The accounting identity ``packets_routed = packets_scored +
packets_lost_inflight`` holds exactly at :meth:`close` when no
:class:`~repro.serve.metrics.DropPolicy` is configured: any routed packet
the instances never scored (including silently dropped frames injected by a
:class:`~repro.serve.faults.FaultPlan`) is attributed to a loss record in
:meth:`degradation_report`.  Failures are deterministic to test: a
``FaultPlan`` kills/wedges instances at exact packet counts and
drops/corrupts/delays exact frames.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import select
import signal
import socket
import time
from queue import Empty as _ReadyQueueEmpty
from collections import OrderedDict, deque
from pathlib import Path
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.netstack.columns import ColumnPacketView, PacketColumns
from repro.netstack.flow import flow_key_of
from repro.netstack.packet import Packet
from repro.serve.events import (
    Alert,
    DegradedMode,
    DetectionEvent,
    InstanceLost,
    event_from_dict,
)
from repro.serve.faults import FaultPlan
from repro.serve.instance import InstanceConfig, run_instance
from repro.serve.metrics import AdaptiveChunker, StreamingMetrics
from repro.serve.runtime import _BLOCK_CACHE_DEPTH, _event_order
from repro.serve.sources import PacketSource, Tick
from repro.serve.streaming import AlertCallback, EventCallback
from repro.serve.supervise import (
    Backoff,
    DegradationReport,
    FailurePolicy,
    InstanceFailure,
    InstanceLossRecord,
)
from repro.serve.wire import (
    TAG_BLCK,
    TAG_CTRL,
    TAG_DONE,
    TAG_EVNT,
    TAG_PKTS,
    TAG_ROWS,
    WireError,
    decode_control,
    decode_events,
    encode_block,
    encode_control,
    encode_packets,
    encode_rows,
    recv_frame,
    send_frame,
)

_HANDSHAKE_TIMEOUT = 60.0


def _local_instance_main(model_dir: str, config: InstanceConfig, ready) -> None:
    """Entry point of one locally spawned instance process."""
    run_instance(model_dir, host="127.0.0.1", port=0, config=config, ready=ready)


def _parse_endpoint(endpoint: str | tuple[str, int]) -> tuple[str, int]:
    if isinstance(endpoint, tuple):
        return endpoint[0], int(endpoint[1])
    host, _, port = endpoint.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"endpoint must be 'host:port', got {endpoint!r}")
    return host, int(port)


class _TaggedReady:
    """Ready-queue shim tagging each address report with its instance index.

    The shared ready queue delivers addresses in *completion* order; without
    the tag the front-end could pair instance 0's socket with instance 1's
    process, which breaks targeted fault injection and respawn.
    """

    def __init__(self, queue, index: int) -> None:
        self.queue = queue
        self.index = index

    def put(self, item) -> None:
        # clap-lint: allow[RL007] reason=unbounded ready queue; put never blocks on capacity
        self.queue.put((self.index, item))


class _InstanceDown(Exception):
    """Internal signal: an instance's socket just failed.

    Carries the failed instance, the underlying error and any packets whose
    ship was interrupted (``requeue``), so the failure handler can re-home
    them under the active policy.
    """

    def __init__(self, instance: "_Instance", error: BaseException, requeue=()) -> None:
        super().__init__(str(error))
        self.instance = instance
        self.error = error
        self.requeue = list(requeue)


class _Instance:
    """Front-end handle of one detector instance (socket + row buffer)."""

    def __init__(
        self,
        index: int,
        sock: socket.socket | None,
        process=None,
        endpoint: tuple[str, int] | None = None,
    ) -> None:
        self.index = index
        self.sock = sock
        self.process = process
        self.endpoint = endpoint
        self.buffer: list[tuple[Packet, float]] = []
        self.report: dict[str, object] | None = None
        self.ready: dict[str, object] | None = None
        self.lost = False
        self.respawns = 0
        # Per-incarnation accounting: packets shipped to this incarnation
        # and packets covered by the events it reported back.  The delta at
        # loss time is the incarnation's in-flight loss.
        self.routed = 0
        self.scored = 0


class FlowPartitioner:
    """Hash flows once, fan packet blocks out to N detector instances.

    Exactly one of ``instances`` (spawn that many local instance processes
    serving ``model_dir``) or ``endpoints`` (connect to already-running
    instances, e.g. started with ``repro-clap serve-instance`` on other
    hosts) must be provided.  The front-end itself never loads the model —
    it only hashes, chunks and forwards.

    The ingest surface mirrors the runtime: :meth:`ingest` /
    :meth:`ingest_many` / :meth:`poll` / :meth:`run`, interim events through
    :meth:`events` / ``on_event`` / ``on_alert``, and a :meth:`close` that
    returns the merged final drain in deterministic ``(first_seen, key)``
    order.  ``config`` sizes each instance's internal worker pool; a global
    ``config.max_flows`` budget is split evenly across instances just as the
    sharded runtime splits it across workers.

    ``on_instance_failure`` selects the failure policy (see the module
    docstring), ``io_deadline`` bounds every socket read/write (0 disables),
    ``max_respawns`` budgets restarts per instance, and ``fault_plan``
    injects deterministic faults for testing.
    """

    def __init__(
        self,
        model_dir: str | Path | None = None,
        *,
        instances: int | None = None,
        endpoints: Sequence[str | tuple[str, int]] | None = None,
        config: InstanceConfig | None = None,
        backend: str | None = None,
        chunk_size: int | str | AdaptiveChunker = "adaptive",
        on_event: EventCallback | None = None,
        on_alert: AlertCallback | None = None,
        metrics: StreamingMetrics | None = None,
        start_method: str | None = None,
        on_instance_failure: str = "fail",
        max_respawns: int = 2,
        io_deadline: float | None = 30.0,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if (instances is None) == (endpoints is None):
            raise ValueError("provide exactly one of instances= or endpoints=")
        if instances is not None and instances < 1:
            raise ValueError(f"instances must be at least 1, got {instances}")
        if instances is not None and model_dir is None:
            raise ValueError("local instances need a model_dir to serve")
        if on_instance_failure not in FailurePolicy:
            raise ValueError(
                f"on_instance_failure must be one of {FailurePolicy}, "
                f"got {on_instance_failure!r}"
            )
        if max_respawns < 0:
            raise ValueError(f"max_respawns must be non-negative, got {max_respawns}")
        if isinstance(chunk_size, AdaptiveChunker):
            self._chunker: AdaptiveChunker | None = chunk_size
            self._fixed_chunk = 0
        elif chunk_size == "adaptive":
            self._chunker = AdaptiveChunker()
            self._fixed_chunk = 0
        elif isinstance(chunk_size, str):
            raise ValueError(
                f"chunk_size must be an integer or 'adaptive', got {chunk_size!r}"
            )
        else:
            if chunk_size < 1:
                raise ValueError(f"chunk_size must be at least 1, got {chunk_size}")
            self._chunker = None
            self._fixed_chunk = int(chunk_size)
        self.config = config or InstanceConfig()
        self.on_event = on_event
        self.on_alert = on_alert
        self.on_instance_failure = on_instance_failure
        self.max_respawns = int(max_respawns)
        self.io_deadline = None if not io_deadline else float(io_deadline)
        self._fault_plan = fault_plan
        self._backoff = Backoff()
        self._closed = False
        self._failed = False
        self._clock = float("-inf")
        self._events: deque[DetectionEvent] = deque()
        self._service_events: deque = deque()
        self._connections_seen = 0
        self._alerts_emitted = 0
        self._live_blocks: "OrderedDict[int, PacketColumns]" = OrderedDict()
        self._current_columns: PacketColumns | None = None
        # Degradation state: loss records, rehashed slots, cumulative
        # identity counters (never reset across respawn incarnations).
        self._losses: list[InstanceLossRecord] = []
        self._degraded_slots: set[int] = set()
        self._teardown_errors: list[str] = []
        self._respawns = 0
        self._degraded_flows = 0
        self._routed_total = 0
        self._scored_total = 0
        self.instances = instances if instances is not None else len(endpoints)
        self._route = list(range(self.instances))
        self.metrics = metrics or StreamingMetrics(shard_count=self.instances)
        if self._chunker is not None:
            self.metrics.attach_chunker(self._chunker)
        # Local-spawn state kept for respawn (None in endpoint mode).
        self._model_dir: str | None = None
        self._instance_config: InstanceConfig | None = None
        self._context = None
        self._ready_queue = None
        self._instances: list[_Instance] = []
        try:
            if endpoints is not None:
                self._instances = self._connect_remote(endpoints)
            else:
                self._instances = self._spawn_local(
                    str(model_dir), int(instances), backend, start_method
                )
            for instance in self._instances:
                if instance.lost:
                    self._apply_degrade(instance)
            self._handshake()
        except BaseException:
            # Satellite fix: never leak a partial fleet — instances that did
            # spawn/connect before the failing one are torn down here.
            self._teardown()
            raise

    # ----------------------------------------------------------------- set-up
    def _connect(
        self, index: int, address: tuple[str, int], *, retry: bool
    ) -> socket.socket:
        """Connect to one instance, honouring injected refusals and backoff."""

        def attempt(_try_number: int) -> socket.socket:
            if self._fault_plan is not None and self._fault_plan.connect_attempt(index):
                raise ConnectionRefusedError(
                    f"injected connection refusal for instance {index}"
                )
            sock = socket.create_connection(
                tuple(address), timeout=self.io_deadline or _HANDSHAKE_TIMEOUT
            )
            sock.settimeout(None)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            return sock

        if retry:
            return self._backoff.run(attempt, retry_on=(OSError,))
        return attempt(0)

    def _spawn_local(
        self,
        model_dir: str,
        instances: int,
        backend: str | None,
        start_method: str | None,
    ) -> list[_Instance]:
        config = self.config
        if config.max_flows is not None:
            # Split the global flow budget evenly, exactly as the sharded
            # runtime splits max_flows across its workers.
            config = dataclasses.replace(
                config, max_flows=-(-config.max_flows // instances)
            )
        method = start_method or (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        context = multiprocessing.get_context(method)
        self._model_dir = model_dir
        self._instance_config = config
        self._context = context
        self._ready_queue = context.Queue()
        processes = []
        handles: list[_Instance] = []
        try:
            for index in range(instances):
                process = context.Process(
                    target=_local_instance_main,
                    args=(model_dir, config, _TaggedReady(self._ready_queue, index)),
                    name=f"clap-instance-{index}",
                    daemon=True,
                )
                process.start()
                processes.append(process)
            addresses: dict[int, tuple] = {}
            for _ in processes:
                index, address = self._ready_queue.get(timeout=_HANDSHAKE_TIMEOUT)
                addresses[index] = address
            for index, process in enumerate(processes):
                try:
                    sock = self._connect(
                        index,
                        addresses[index],
                        retry=self.on_instance_failure == "respawn",
                    )
                except OSError as error:
                    if self.on_instance_failure != "degrade":
                        raise
                    handle = _Instance(index, None, process)
                    handle.lost = True
                    handles.append(handle)
                    self._record_loss(handle, f"startup connect failed: {error}", "degrade")
                    continue
                handles.append(_Instance(index, sock, process))
        except BaseException as error:
            for handle in handles:
                if handle.sock is not None:
                    handle.sock.close()
            for process in processes:
                if process.is_alive():
                    process.terminate()
                self._reap(process, timeout=5.0)
            if isinstance(error, _ReadyQueueEmpty):
                raise RuntimeError(
                    "local detector instance failed to start (no address reported)"
                ) from None
            raise
        return handles

    def _connect_remote(
        self, endpoints: Sequence[str | tuple[str, int]]
    ) -> list[_Instance]:
        handles: list[_Instance] = []
        try:
            for index, endpoint in enumerate(endpoints):
                address = _parse_endpoint(endpoint)
                try:
                    sock = self._connect(
                        index, address, retry=self.on_instance_failure == "respawn"
                    )
                except OSError as error:
                    if self.on_instance_failure != "degrade":
                        raise
                    handle = _Instance(index, None, endpoint=address)
                    handle.lost = True
                    handles.append(handle)
                    self._record_loss(handle, f"startup connect failed: {error}", "degrade")
                    continue
                handles.append(_Instance(index, sock, endpoint=address))
        except BaseException:
            for handle in handles:
                if handle.sock is not None:
                    handle.sock.close()
            raise
        return handles

    def _handshake(self) -> None:
        deadline = time.monotonic() + _HANDSHAKE_TIMEOUT
        for instance in self._instances:
            if instance.lost:
                continue
            try:
                send_frame(
                    instance.sock,
                    TAG_CTRL,
                    encode_control({"op": "hello"}),
                    deadline=deadline,
                )
            except (OSError, WireError) as error:
                self._on_down(instance, error)
        for instance in self._instances:
            if instance.lost:
                continue
            try:
                frame = recv_frame(instance.sock, deadline)
                if frame is None or frame[0] != TAG_CTRL:
                    raise WireError(
                        f"instance {instance.index} failed the hello handshake"
                    )
                instance.ready = decode_control(frame[1])
            except (OSError, WireError) as error:
                self._on_down(instance, error)

    # ------------------------------------------------------- failure handling
    def _record_loss(self, instance: _Instance, reason: str, policy: str) -> None:
        record = InstanceLossRecord(
            index=instance.index,
            kind="instance",
            reason=reason,
            policy=policy,
            packets_routed=instance.routed,
            packets_scored=instance.scored,
        )
        self._losses.append(record)
        self.metrics.record_instance_lost(record.packets_lost_inflight)
        self._service_events.append(
            InstanceLost(
                index=instance.index,
                kind="instance",
                reason=reason,
                policy=policy,
                packets_lost_inflight=record.packets_lost_inflight,
            )
        )

    def _reap(self, process, timeout: float = 5.0) -> None:
        """Join one child process, escalating terminate -> kill."""
        if process is None:
            return
        process.join(timeout=timeout)
        if process.is_alive():
            process.terminate()
            process.join(timeout=timeout)
        if process.is_alive():  # pragma: no cover - needs an unkillable child
            process.kill()
            process.join(timeout=timeout)

    def _close_instance(self, instance: _Instance) -> None:
        """Close one instance's socket and reap its process (idempotent)."""
        if instance.sock is not None:
            try:
                instance.sock.close()
            except OSError as error:  # pragma: no cover - close rarely fails
                self._teardown_errors.append(
                    f"instance {instance.index} socket close: {error}"
                )
            instance.sock = None
        if instance.process is not None:
            if instance.process.is_alive():
                instance.process.terminate()
            self._reap(instance.process)
            instance.process = None

    def _rehome(self, pending: list[tuple[Packet, float]]) -> None:
        """Requeue unsent packets onto their (possibly rerouted) owners."""
        for packet, clock in pending:
            slot = hash(flow_key_of(packet)) % self.instances
            target = self._instances[self._route[slot]]
            if not target.lost:
                target.buffer.append((packet, clock))

    def _apply_degrade(self, instance: _Instance) -> None:
        """Rehash ``instance``'s slots to the survivors; emit DegradedMode."""
        instance.lost = True
        survivors = [i.index for i in self._instances if not i.lost]
        if not survivors:
            self._failed = True
            raise InstanceFailure(
                "every detector instance has been lost", index=instance.index
            )
        for slot in range(self.instances):
            if self._route[slot] == instance.index:
                self._route[slot] = survivors[slot % len(survivors)]
                self._degraded_slots.add(slot)
        self._service_events.append(
            DegradedMode(
                survivors=tuple(survivors),
                lost=tuple(i.index for i in self._instances if i.lost),
            )
        )

    def _on_down(
        self,
        instance: _Instance,
        error: BaseException,
        requeue=(),
        closing: bool = False,
    ) -> None:
        """One instance's socket failed: apply the failure policy."""
        pending = list(requeue)
        pending.extend(instance.buffer)
        instance.buffer = []
        if instance.lost:
            # Already handled (e.g. block broadcast and row ship both hit the
            # same dead peer); just re-home whatever was still uncovered.
            self._rehome(pending)
            return
        reason = f"{type(error).__name__}: {error}" if str(error) else type(error).__name__
        self._close_instance(instance)
        policy = self.on_instance_failure
        if policy == "respawn" and closing:
            # The stream is over; a fresh incarnation has no state to drain.
            policy = "degrade"
        if policy == "respawn":
            if instance.respawns >= self.max_respawns:
                reason = f"{reason}; respawn budget ({self.max_respawns}) exhausted"
                policy = "degrade"
            else:
                self._record_loss(instance, reason, "respawn")
                try:
                    self._respawn(instance, pending)
                    return
                except (OSError, WireError, RuntimeError) as respawn_error:
                    reason = f"{reason}; respawn failed: {respawn_error}"
                    policy = "degrade"
        if policy == "fail":
            self._record_loss(instance, reason, "fail")
            instance.lost = True
            self._failed = True
            if self._closed:
                self._teardown()
            raise InstanceFailure(
                f"instance {instance.index} lost ({reason})", index=instance.index
            ) from error
        # degrade
        self._record_loss(instance, reason, "degrade")
        if closing:
            instance.lost = True
            return
        self._apply_degrade(instance)
        self._rehome(pending)

    def _respawn(self, instance: _Instance, pending: list[tuple[Packet, float]]) -> None:
        """Start a fresh incarnation of ``instance`` and re-register state."""
        if instance.endpoint is not None:
            sock = self._connect(instance.index, instance.endpoint, retry=True)
        else:
            if self._context is None or self._model_dir is None:
                raise RuntimeError("instance is not locally respawnable")
            process = self._context.Process(
                target=_local_instance_main,
                args=(
                    self._model_dir,
                    self._instance_config,
                    _TaggedReady(self._ready_queue, instance.index),
                ),
                name=f"clap-instance-{instance.index}r{instance.respawns + 1}",
                daemon=True,
            )
            process.start()
            try:
                _, address = self._ready_queue.get(timeout=_HANDSHAKE_TIMEOUT)
                sock = self._connect(instance.index, address, retry=True)
            except BaseException:
                self._reap(process, timeout=5.0)
                raise
            instance.process = process
        # Fresh incarnation: reset the per-incarnation accounting (the old
        # incarnation's counters were captured in its loss record).
        instance.sock = sock
        instance.routed = 0
        instance.scored = 0
        instance.report = None
        instance.respawns += 1
        deadline = time.monotonic() + _HANDSHAKE_TIMEOUT
        send_frame(sock, TAG_CTRL, encode_control({"op": "hello"}), deadline=deadline)
        frame = recv_frame(sock, deadline)
        if frame is None or frame[0] != TAG_CTRL:
            raise WireError(
                f"respawned instance {instance.index} failed the hello handshake"
            )
        instance.ready = decode_control(frame[1])
        # State re-registration: the live block window must reach the new
        # incarnation before any requeued ROWS slice references it.
        for block_id, columns in self._live_blocks.items():
            payload = columns.pack_block()
            send_frame(
                sock,
                TAG_BLCK,
                *encode_block(block_id, payload),
                deadline=time.monotonic() + (self.io_deadline or _HANDSHAKE_TIMEOUT),
            )
        instance.buffer = pending
        self._respawns += 1
        self.metrics.record_respawn()

    def _apply_faults(self, count: int) -> None:
        """Fire any process-level faults due at the current packet count."""
        if self._fault_plan is None:
            return
        for kind, index in self._fault_plan.packet_routed(count):
            instance = self._instances[index]
            if kind == "kill-instance":
                process = instance.process
                if process is not None and process.pid is not None:
                    os.kill(process.pid, signal.SIGKILL)
            elif kind == "wedge-instance" and not instance.lost:
                try:
                    send_frame(
                        instance.sock,
                        TAG_CTRL,
                        encode_control({"op": "wedge"}),
                        deadline=time.monotonic()
                        + (self.io_deadline or _HANDSHAKE_TIMEOUT),
                    )
                except (OSError, WireError) as error:
                    self._on_down(instance, error)
            # kill-worker / wedge-worker target the runtime's shard pool and
            # are applied by ParallelStreamingDetector, not the partitioner.

    # -------------------------------------------------------------- ingestion
    def ingest(self, packet: Packet) -> None:
        """Route one packet to the instance owning its flow (may block)."""
        if self._closed:
            raise RuntimeError("ingest() after close()")
        if (
            type(packet) is ColumnPacketView
            and packet.columns is not self._current_columns
        ):
            # New capture block: flush buffered rows first so queued slices
            # always precede the broadcast that may evict their block from
            # the instances' FIFO caches.
            for instance in self._instances:
                self._guarded_submit(instance)
            self._ship_block(packet.columns)
            self._current_columns = packet.columns
        key = flow_key_of(packet)
        instance = self._instances[self._route[hash(key) % self.instances]]
        instance.buffer.append((packet, self._clock))
        if packet.timestamp > self._clock:
            self._clock = packet.timestamp
        self._apply_faults(1)
        if len(instance.buffer) >= self._chunk_target():
            self._guarded_submit(instance)

    def ingest_many(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.ingest(packet)

    def poll(self, now: float | None = None) -> None:
        """Advance stream time on every instance without a packet."""
        if self._closed:
            return
        now = self._clock if now is None else float(now)
        if now == float("-inf"):
            return
        if now > self._clock:
            self._clock = now
        payload = encode_control({"op": "poll", "now": now})
        for instance in self._instances:
            if instance.lost:
                continue
            try:
                self._submit(instance)
                self._send(instance, TAG_CTRL, payload)
            except _InstanceDown as down:
                self._on_down(instance, down.error, requeue=down.requeue)

    def run(self, source: PacketSource) -> list[DetectionEvent]:
        """Consume a packet source to exhaustion, then :meth:`close`."""
        try:
            for item in source:
                if isinstance(item, Tick):
                    self.poll(item.now)
                else:
                    self.ingest(item)
        except BaseException:
            try:
                self.close()
            except Exception as teardown_error:
                # Teardown must not mask the original stream error; keep it
                # for the degradation report instead.
                self._teardown_errors.append(
                    f"close during error teardown: {teardown_error!r}"
                )
            raise
        return self.close()

    # -------------------------------------------------------------- transport
    def _chunk_target(self) -> int:
        return self._fixed_chunk if self._chunker is None else self._chunker.size

    def _send(self, instance: _Instance, tag: bytes, *chunks) -> None:
        """One frame to one instance: pump events first, note backpressure."""
        self._pump()
        if instance.lost or instance.sock is None:
            raise _InstanceDown(
                instance, ConnectionError(f"instance {instance.index} is lost")
            )
        if self._fault_plan is not None:
            action = self._fault_plan.frame_fault(tag.decode("ascii"))
            if action == "drop":
                return
            if action == "corrupt":
                chunks = (self._fault_plan.corrupt(b"".join(bytes(c) for c in chunks)),)
            elif isinstance(action, tuple) and action[0] == "delay":
                time.sleep(action[1])
        if self._chunker is not None:
            _, writable, _ = select.select((), (instance.sock,), (), 0)
            if not writable:
                # The socket's send buffer is full — the instance is behind.
                # sendall below then blocks, which is the backpressure
                # contract; record it so the chunker grows the chunk.
                self._chunker.record_backpressure()
        deadline = (
            time.monotonic() + self.io_deadline if self.io_deadline else None
        )
        try:
            send_frame(instance.sock, tag, *chunks, deadline=deadline)
        except (OSError, WireError) as error:
            raise _InstanceDown(instance, error) from None
        if self._chunker is not None:
            self._chunker.record_submit()

    def _guarded_submit(self, instance: _Instance) -> None:
        try:
            self._submit(instance)
        except _InstanceDown as down:
            self._on_down(down.instance, down.error, requeue=down.requeue)

    def _submit(self, instance: _Instance) -> None:
        """Ship one instance's buffered rows as ROWS/PKTS runs (in order)."""
        chunk = instance.buffer
        if not chunk or instance.lost:
            return
        instance.buffer = []
        # Build the frame sequence first, so a mid-chunk socket failure knows
        # exactly which packets were covered by already-sent frames and which
        # must be requeued under the failure policy.
        messages: list[tuple] = []
        run_columns: PacketColumns | None = None
        run_rows: list[tuple[Packet, float]] = []
        object_run: list[tuple[Packet, float]] = []

        def close_column_run() -> None:
            nonlocal run_columns
            if run_columns is not None:
                covered = list(run_rows)
                messages.append(
                    (
                        TAG_ROWS,
                        encode_rows(
                            id(run_columns),
                            np.asarray(
                                [p.index for p, _ in covered], dtype=np.int64
                            ).tobytes(),
                            np.asarray(
                                [c for _, c in covered], dtype=np.float64
                            ).tobytes(),
                        ),
                        covered,
                    )
                )
                run_columns = None
                run_rows.clear()

        def close_object_run() -> None:
            if object_run:
                covered = list(object_run)
                messages.append(
                    (
                        TAG_PKTS,
                        (
                            encode_packets(
                                [
                                    (p.timestamp, p.to_bytes().hex(), clock)
                                    for p, clock in covered
                                ]
                            ),
                        ),
                        covered,
                    )
                )
                object_run.clear()

        for packet, clock in chunk:
            if type(packet) is ColumnPacketView:
                columns = packet.columns
                if columns is not run_columns:
                    close_column_run()
                    close_object_run()
                    if id(columns) not in self._live_blocks:
                        # Block left the FIFO window (or was buffered before
                        # first sight); re-broadcast to every instance.
                        messages.append((TAG_BLCK, columns, []))
                    run_columns = columns
                run_rows.append((packet, clock))
            else:
                close_column_run()
                object_run.append((packet, clock))
        close_column_run()
        close_object_run()

        covered_count = 0
        try:
            for tag, body, covered in messages:
                if tag == TAG_BLCK:
                    self._ship_block(body)
                    continue
                self._send(instance, tag, *body)
                shipped = len(covered)
                covered_count += shipped
                instance.routed += shipped
                self._routed_total += shipped
        except _InstanceDown as down:
            uncovered: list[tuple[Packet, float]] = []
            seen = 0
            for tag, _body, covered in messages:
                if tag == TAG_BLCK:
                    continue
                if seen >= covered_count:
                    uncovered.extend(covered)
                seen += len(covered)
            down.requeue.extend(uncovered)
            raise
        finally:
            if covered_count:
                self.metrics.record_ingest(instance.index, covered_count)

    def _ship_block(self, columns: PacketColumns) -> None:
        """Broadcast one capture block to every live instance (first sight only).

        FIFO eviction by ship order, never refreshed on re-sight, for the
        same reason as the process runtime: the instances evict their
        unpacked caches in broadcast arrival order, and only identical FIFO
        windows on both sides keep a queued row slice guaranteed to find its
        block cached.
        """
        block_id = id(columns)
        if block_id in self._live_blocks:
            return
        payload = columns.pack_block()
        chunks = encode_block(block_id, payload)
        downs: list[_InstanceDown] = []
        for instance in self._instances:
            if instance.lost:
                continue
            try:
                self._send(instance, TAG_BLCK, *chunks)
            except _InstanceDown as down:
                downs.append(down)
        self.metrics.record_shm_segment(len(payload), len(self._live_blocks) + 1)
        self._live_blocks[block_id] = columns
        while len(self._live_blocks) > _BLOCK_CACHE_DEPTH:
            self._live_blocks.popitem(last=False)
        for down in downs:
            self._on_down(down.instance, down.error, requeue=down.requeue)

    def _pump(self) -> None:
        """Drain every readable instance socket (interim EVNT frames)."""
        while True:
            by_sock = {
                instance.sock: instance
                for instance in self._instances
                if not instance.lost
                and instance.sock is not None
                and instance.report is None
            }
            if not by_sock:
                return
            readable, _, _ = select.select(list(by_sock), (), (), 0)
            if not readable:
                return
            for sock in readable:
                instance = by_sock[sock]
                try:
                    self._read_frame(instance)
                except _InstanceDown as down:
                    self._on_down(instance, down.error)

    def _read_frame(self, instance: _Instance, deadline: float | None = None) -> bool:
        """Read one frame from ``instance``; ``True`` once DONE arrived."""
        if deadline is None and self.io_deadline:
            # Even a select()-readable socket may hold only part of a frame;
            # bound the completion read so a wedged peer cannot hang ingest.
            deadline = time.monotonic() + self.io_deadline
        try:
            frame = recv_frame(instance.sock, deadline)
        except (OSError, WireError) as error:
            raise _InstanceDown(instance, error) from None
        if frame is None:
            raise _InstanceDown(
                instance,
                WireError(
                    f"instance {instance.index} closed its connection mid-stream"
                ),
            )
        tag, payload = frame
        if tag == TAG_EVNT:
            events = decode_events(payload)
            scored = sum(event.result.packet_count for event in events)
            instance.scored += scored
            self._scored_total += scored
            self._dispatch(events)
            return False
        if tag == TAG_DONE:
            instance.report = json.loads(bytes(payload).decode("utf-8"))
            return True
        raise _InstanceDown(
            instance, WireError(f"unexpected frame tag {bytes(tag)!r} at front-end")
        )

    def _dispatch(self, events: list[DetectionEvent]) -> list[DetectionEvent]:
        out: list[DetectionEvent] = []
        alerts = 0
        degraded = 0
        for event in events:
            if self._degraded_slots and event.result.key is not None:
                slot = hash(event.result.key) % self.instances
                if slot in self._degraded_slots and not event.result.degraded:
                    event = dataclasses.replace(
                        event,
                        result=dataclasses.replace(event.result, degraded=True),
                    )
                    degraded += 1
            self._connections_seen += 1
            is_alert = event.is_alert
            if is_alert:
                alerts += 1
                self._alerts_emitted += 1
            self._events.append(event)
            if self.on_event is not None:
                self.on_event(event)
            if is_alert and self.on_alert is not None:
                self.on_alert(event)  # type: ignore[arg-type]
            out.append(event)
        if degraded:
            self._degraded_flows += degraded
            self.metrics.record_degraded_flows(degraded)
        self.metrics.record_events(len(out), alerts)
        return out

    # ----------------------------------------------------------------- output
    def events(self) -> Iterator[DetectionEvent]:
        """Drain the events received since the last call (non-blocking)."""
        if not self._closed:
            self._pump()
        while True:
            try:
                yield self._events.popleft()
            except IndexError:
                return

    def alerts(self) -> Iterator[Alert]:
        for event in self.events():
            if isinstance(event, Alert):
                yield event

    def service_events(self) -> Iterator:
        """Drain typed service events (InstanceLost / DegradedMode)."""
        while True:
            try:
                yield self._service_events.popleft()
            except IndexError:
                return

    def close(self) -> list[DetectionEvent]:
        """End of stream: drain every instance, merge the final events.

        Returns the merged final drains sorted by ``(first_seen, key)`` —
        the same deterministic order a single unpartitioned detector's
        :meth:`close` produces.  Local instance processes are joined; the
        per-instance ``DONE`` reports (metrics, occupancy, peaks) stay
        available as :attr:`instance_reports`.

        Under ``respawn``/``degrade``, a mid-close fault never raises: the
        affected instance's loss is recorded (deadline-bounded DONE waits,
        so a wedged peer cannot hang shutdown) and the surviving events are
        returned; consult :meth:`degradation_report` afterwards.  Under
        ``fail`` the fleet is torn down and
        :class:`~repro.serve.supervise.InstanceFailure` is raised.
        """
        if self._closed:
            return []
        self._closed = True
        if self._failed:
            self._teardown()
            return []
        final_clock = self._clock
        close_payload = encode_control({"op": "close"})
        poll_payload = (
            encode_control({"op": "poll", "now": final_clock})
            if final_clock > float("-inf")
            else None
        )
        for instance in self._instances:
            if instance.lost:
                continue
            try:
                self._submit(instance)
                if poll_payload is not None:
                    self._send(instance, TAG_CTRL, poll_payload)
                self._send(instance, TAG_CTRL, close_payload)
            except _InstanceDown as down:
                self._on_down(instance, down.error, requeue=down.requeue, closing=True)
        final: list[DetectionEvent] = []
        for instance in self._instances:
            if instance.lost or instance.sock is None:
                continue
            deadline = (
                time.monotonic() + self.io_deadline if self.io_deadline else None
            )
            try:
                while instance.report is None:
                    self._read_frame(instance, deadline)
            except _InstanceDown as down:
                self._on_down(instance, down.error, closing=True)
                continue
            report_events = [
                event_from_dict(record)
                for record in instance.report.get("events", ())
            ]
            scored = sum(event.result.packet_count for event in report_events)
            instance.scored += scored
            self._scored_total += scored
            final.extend(report_events)
        if self.config.drop_policy is None:
            # Honest accounting: any routed packet an instance never scored
            # (e.g. a silently dropped frame) is attributed, keeping
            # packets_routed = packets_scored + packets_lost_inflight exact.
            # With a drop policy, capacity-dropped flows are legitimately
            # unscored, so residuals are not attributable to faults.
            for instance in self._instances:
                if instance.lost:
                    continue
                residual = instance.routed - instance.scored
                if residual > 0:
                    self._record_loss(
                        instance,
                        f"{residual} routed packets unaccounted at close",
                        self.on_instance_failure,
                    )
        final.sort(key=_event_order)
        final = self._dispatch(final)
        self._teardown()
        return final

    def degradation_report(self) -> DegradationReport:
        """Everything the stream lost (empty and falsy for a clean run)."""
        return DegradationReport(
            losses=list(self._losses),
            respawns=self._respawns,
            degraded_flows=self._degraded_flows,
            teardown_errors=list(self._teardown_errors),
        )

    def _teardown(self) -> None:
        """Close every socket and reap every child process (idempotent)."""
        for instance in self._instances:
            self._close_instance(instance)

    # ------------------------------------------------------------- monitoring
    @property
    def connections_seen(self) -> int:
        return self._connections_seen

    @property
    def alerts_emitted(self) -> int:
        return self._alerts_emitted

    @property
    def threshold(self) -> float:
        """The (shared) operating threshold reported by the instances."""
        for instance in self._instances:
            if instance.ready is not None:
                return float(instance.ready.get("threshold", float("nan")))
        return float("nan")

    @property
    def instance_reports(self) -> list[dict[str, object]]:
        """Each instance's DONE report (valid after :meth:`close`)."""
        return [instance.report or {} for instance in self._instances]

    def occupancy(self) -> list[int]:
        """Final tracked connections per instance (from the DONE reports)."""
        return [
            sum(int(n) for n in (instance.report or {}).get("occupancy", ()))
            for instance in self._instances
        ]

    def peak_occupancy(self) -> list[int]:
        """Peak concurrently tracked connections per instance."""
        return [
            int((instance.report or {}).get("peak_occupancy", 0))
            for instance in self._instances
        ]

    def metrics_snapshot(self) -> dict:
        """Front-end metrics plus every instance's own snapshot."""
        snapshot = self.metrics.snapshot(self.occupancy() if self._closed else None)
        snapshot["instances"] = [
            (instance.report or {}).get("metrics") for instance in self._instances
        ]
        degradation = snapshot.get("degradation")
        if isinstance(degradation, dict):
            degradation["packets_routed"] = self._routed_total
            degradation["packets_scored"] = self._scored_total
        return snapshot

    def render_metrics(self) -> str:
        """Human-readable front-end summary plus per-instance peaks."""
        lines = [self.metrics.render(self.occupancy() if self._closed else None)]
        for instance in self._instances:
            report = instance.report
            if report is None:
                continue
            lines.append(
                f"instance[{instance.index}]: connections={report.get('connections_seen', 0)} "
                f"alerts={report.get('alerts_emitted', 0)} "
                f"peak-occupancy={report.get('peak_occupancy', 0)}"
            )
        return "\n".join(lines)


def format_event_line(event: DetectionEvent) -> str:
    """One NDJSON line per event — shared by the CLI and the smoke tests."""
    return json.dumps(event.to_dict())


__all__ = [
    "FlowPartitioner",
    "InstanceConfig",
    "format_event_line",
]
