"""Streaming-first serving layer: the online deployment surface of CLAP.

``repro.serve`` turns the trained pipeline into the middlebox companion of
Figure 3: :class:`StreamingDetector` ingests raw packets, assembles them with
an incremental :class:`~repro.netstack.flow.FlowTable`, micro-batches
completed connections through the batched inference engine under a
:class:`FlushPolicy`, and emits typed :class:`DetectionEvent`/:class:`Alert`
objects via iterator and callback APIs.
"""

from repro.core.results import DetectionResult
from repro.netstack.flow import CompletionReason, FlowTable
from repro.serve.events import Alert, DetectionEvent, make_event
from repro.serve.streaming import FlushPolicy, StreamingDetector

__all__ = [
    "Alert",
    "CompletionReason",
    "DetectionEvent",
    "DetectionResult",
    "FlowTable",
    "FlushPolicy",
    "StreamingDetector",
    "make_event",
]
