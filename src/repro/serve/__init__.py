"""Streaming-first serving layer: the online deployment surface of CLAP.

``repro.serve`` turns the trained pipeline into the middlebox companion of
Figure 3, layered as a streaming runtime:

* :mod:`repro.serve.sources` — pluggable packet sources (:class:`PcapSource`,
  :class:`NDJSONSource`, rate-controlled :class:`ReplaySource` with
  :class:`Tick` heartbeats for quiet links);
* :class:`~repro.netstack.flow.FlowTable` /
  :class:`~repro.netstack.flow.ShardedFlowTable` — incremental,
  hash-partitioned connection assembly;
* :class:`StreamingDetector` — the single-threaded detector: micro-batches
  completed connections through the batched inference engine under a
  :class:`FlushPolicy` and emits typed :class:`DetectionEvent`/:class:`Alert`
  objects via iterator and callback APIs;
* :class:`ParallelStreamingDetector` (:mod:`repro.serve.runtime`) — fans
  packets to per-shard workers behind bounded queues and funnels events into
  one ordered stream, with :class:`DropPolicy` handling of capacity floods
  and :class:`StreamingMetrics` backpressure monitoring
  (:mod:`repro.serve.metrics`);
* :class:`FlowPartitioner` (:mod:`repro.serve.partition`) — the scale-out
  layer above the runtime: hashes each flow once and fans packet blocks to N
  :class:`~repro.serve.instance.DetectorInstance` back-ends over sockets
  (local processes or remote hosts), speaking the :mod:`repro.serve.wire`
  frame protocol and merging events back into one deterministic stream.

The fault-tolerance layer rides across all of it: :class:`FaultPlan`
(:mod:`repro.serve.faults`) injects deterministic, seedable failures;
:class:`Backoff` / :class:`InstanceFailure` / :class:`DegradationReport`
(:mod:`repro.serve.supervise`) implement the ``fail`` / ``respawn`` /
``degrade`` policies; :class:`InstanceLost` / :class:`DegradedMode` service
events announce what happened; and :class:`~repro.serve.wire.WireTimeout`
bounds every frame read and write with a deadline.
"""

from repro.core.results import DetectionResult
from repro.netstack.flow import CompletionReason, FlowTable, ShardedFlowTable
from repro.serve.events import (
    Alert,
    DegradedMode,
    DetectionEvent,
    InstanceLost,
    event_from_dict,
    make_event,
)
from repro.serve.faults import FaultPlan, FaultSpecError, parse_fault_specs
from repro.serve.instance import DetectorInstance, InstanceConfig, run_instance
from repro.serve.metrics import (
    AdaptiveChunker,
    DropPolicy,
    LatencyHistogram,
    StreamingMetrics,
)
from repro.serve.partition import FlowPartitioner
from repro.serve.runtime import ParallelStreamingDetector
from repro.serve.supervise import (
    Backoff,
    DegradationReport,
    FailurePolicy,
    InstanceFailure,
    InstanceLossRecord,
)
from repro.serve.sources import (
    IterableSource,
    NDJSONSource,
    PacketSource,
    PcapSource,
    ReplaySource,
    Tick,
    open_source,
)
from repro.serve.streaming import FlushPolicy, StreamingDetector
from repro.serve.wire import WireError, WireTimeout

__all__ = [
    "AdaptiveChunker",
    "Alert",
    "Backoff",
    "CompletionReason",
    "DegradationReport",
    "DegradedMode",
    "DetectionEvent",
    "DetectionResult",
    "DetectorInstance",
    "DropPolicy",
    "FailurePolicy",
    "FaultPlan",
    "FaultSpecError",
    "FlowPartitioner",
    "FlowTable",
    "FlushPolicy",
    "InstanceConfig",
    "InstanceFailure",
    "InstanceLossRecord",
    "InstanceLost",
    "IterableSource",
    "LatencyHistogram",
    "NDJSONSource",
    "PacketSource",
    "ParallelStreamingDetector",
    "PcapSource",
    "ReplaySource",
    "ShardedFlowTable",
    "StreamingDetector",
    "StreamingMetrics",
    "Tick",
    "WireError",
    "WireTimeout",
    "event_from_dict",
    "make_event",
    "open_source",
    "parse_fault_specs",
    "run_instance",
]
