"""Streaming-first serving layer: the online deployment surface of CLAP.

``repro.serve`` turns the trained pipeline into the middlebox companion of
Figure 3, layered as a streaming runtime:

* :mod:`repro.serve.sources` — pluggable packet sources (:class:`PcapSource`,
  :class:`NDJSONSource`, rate-controlled :class:`ReplaySource` with
  :class:`Tick` heartbeats for quiet links);
* :class:`~repro.netstack.flow.FlowTable` /
  :class:`~repro.netstack.flow.ShardedFlowTable` — incremental,
  hash-partitioned connection assembly;
* :class:`StreamingDetector` — the single-threaded detector: micro-batches
  completed connections through the batched inference engine under a
  :class:`FlushPolicy` and emits typed :class:`DetectionEvent`/:class:`Alert`
  objects via iterator and callback APIs;
* :class:`ParallelStreamingDetector` (:mod:`repro.serve.runtime`) — fans
  packets to per-shard workers behind bounded queues and funnels events into
  one ordered stream, with :class:`DropPolicy` handling of capacity floods
  and :class:`StreamingMetrics` backpressure monitoring
  (:mod:`repro.serve.metrics`);
* :class:`FlowPartitioner` (:mod:`repro.serve.partition`) — the scale-out
  layer above the runtime: hashes each flow once and fans packet blocks to N
  :class:`~repro.serve.instance.DetectorInstance` back-ends over sockets
  (local processes or remote hosts), speaking the :mod:`repro.serve.wire`
  frame protocol and merging events back into one deterministic stream.
"""

from repro.core.results import DetectionResult
from repro.netstack.flow import CompletionReason, FlowTable, ShardedFlowTable
from repro.serve.events import Alert, DetectionEvent, event_from_dict, make_event
from repro.serve.instance import DetectorInstance, InstanceConfig, run_instance
from repro.serve.metrics import (
    AdaptiveChunker,
    DropPolicy,
    LatencyHistogram,
    StreamingMetrics,
)
from repro.serve.partition import FlowPartitioner
from repro.serve.runtime import ParallelStreamingDetector
from repro.serve.sources import (
    IterableSource,
    NDJSONSource,
    PacketSource,
    PcapSource,
    ReplaySource,
    Tick,
    open_source,
)
from repro.serve.streaming import FlushPolicy, StreamingDetector

__all__ = [
    "AdaptiveChunker",
    "Alert",
    "CompletionReason",
    "DetectionEvent",
    "DetectionResult",
    "DetectorInstance",
    "DropPolicy",
    "FlowPartitioner",
    "FlowTable",
    "FlushPolicy",
    "InstanceConfig",
    "IterableSource",
    "LatencyHistogram",
    "NDJSONSource",
    "PacketSource",
    "ParallelStreamingDetector",
    "PcapSource",
    "ReplaySource",
    "ShardedFlowTable",
    "StreamingDetector",
    "StreamingMetrics",
    "Tick",
    "event_from_dict",
    "make_event",
    "open_source",
    "run_instance",
]
