"""Deterministic, seedable fault injection for the serving stack.

A :class:`FaultPlan` is a passive schedule of faults that the serving
components consult at well-defined hook points:

``packet_routed(count)``
    Called by :class:`~repro.serve.partition.FlowPartitioner` after every
    routed packet, and by :class:`~repro.serve.runtime.ParallelStreamingDetector`
    after every ingested packet.  Returns the list of process-level faults
    (``kill-instance``, ``kill-worker``, ``wedge-instance``,
    ``wedge-worker``) whose trigger packet has been reached.  The caller
    applies them (SIGKILL, wedge control message) because only the caller
    knows the pid / queue for a given index.
``frame_fault(tag)``
    Called by the partitioner before each wire frame is sent.  Returns an
    action (``"drop"``, ``"corrupt"``, ``("delay", seconds)``) or ``None``.
``connect_attempt(index)``
    Called before each connect to instance ``index``.  Returns True when a
    synthetic connection refusal should be injected.

All randomness (corruption bytes) flows from one seeded
``numpy.random.default_rng`` so a plan replays identically; the plan keeps
a ``fired`` log so tests can assert exactly which faults triggered.  A plan
never crosses a process boundary — it lives in the front-end process and
acts on child processes from the outside.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FaultPlan", "FaultSpecError", "parse_fault_specs"]


class FaultSpecError(ValueError):
    """A ``--inject-fault`` spec string could not be parsed."""


@dataclass(frozen=True)
class _ProcessFault:
    """A fault that targets a process (instance or shard worker)."""

    kind: str  # "kill-instance" | "kill-worker" | "wedge-instance" | "wedge-worker"
    index: int
    at_packet: int


@dataclass(frozen=True)
class _FrameFault:
    """A fault applied to the nth wire frame carrying ``tag``."""

    kind: str  # "drop" | "corrupt" | "delay"
    tag: str
    nth: int
    seconds: float = 0.0


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults.

    Build one with the fluent methods (each returns ``self``)::

        plan = (FaultPlan(seed=7)
                .kill_instance(0, at_packet=40)
                .corrupt_frame("ROWS", nth=3))

    or parse CLI specs with :func:`parse_fault_specs`.
    """

    seed: int = 0
    _process_faults: list = field(default_factory=list)
    _frame_faults: list = field(default_factory=list)
    _refusals: dict = field(default_factory=dict)
    fired: list = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rng = np.random.default_rng(self.seed)
        self._packets = 0
        self._frame_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # builders
    def kill_instance(self, index: int, at_packet: int) -> FaultPlan:
        """SIGKILL locally-spawned instance ``index`` at routed packet N."""
        self._process_faults.append(_ProcessFault("kill-instance", index, at_packet))
        return self

    def kill_worker(self, index: int, at_packet: int) -> FaultPlan:
        """SIGKILL shard process worker ``index`` at ingested packet N."""
        self._process_faults.append(_ProcessFault("kill-worker", index, at_packet))
        return self

    def wedge_instance(self, index: int, at_packet: int) -> FaultPlan:
        """Make instance ``index`` stop reading its socket (wedged peer)."""
        self._process_faults.append(_ProcessFault("wedge-instance", index, at_packet))
        return self

    def wedge_worker(self, index: int, at_packet: int) -> FaultPlan:
        """Wedge shard worker ``index``'s input queue (stops consuming)."""
        self._process_faults.append(_ProcessFault("wedge-worker", index, at_packet))
        return self

    def refuse_connect(self, index: int, times: int = 1) -> FaultPlan:
        """Synthetically refuse the next ``times`` connects to ``index``."""
        with self._lock:
            self._refusals[index] = self._refusals.get(index, 0) + times
        return self

    def drop_frame(self, tag: str, nth: int) -> FaultPlan:
        """Silently drop the nth frame carrying ``tag`` (1-based)."""
        self._frame_faults.append(_FrameFault("drop", tag, nth))
        return self

    def corrupt_frame(self, tag: str, nth: int) -> FaultPlan:
        """Flip seeded random bytes in the nth frame carrying ``tag``."""
        self._frame_faults.append(_FrameFault("corrupt", tag, nth))
        return self

    def delay_frame(self, tag: str, nth: int, seconds: float) -> FaultPlan:
        """Sleep ``seconds`` before sending the nth frame carrying ``tag``."""
        self._frame_faults.append(_FrameFault("delay", tag, nth, seconds))
        return self

    # ------------------------------------------------------------------
    # hooks
    def packet_routed(self, count: int = 1) -> list:
        """Advance the packet clock; return process faults now due."""
        with self._lock:
            self._packets += count
            due = [f for f in self._process_faults if f.at_packet <= self._packets]
            for fault in due:
                self._process_faults.remove(fault)
                self.fired.append((fault.kind, fault.index, self._packets))
            return [(f.kind, f.index) for f in due]

    def frame_fault(self, tag: str):
        """Return the action for this frame: None, "drop", "corrupt", ("delay", s)."""
        with self._lock:
            count = self._frame_counts.get(tag, 0) + 1
            self._frame_counts[tag] = count
            for fault in self._frame_faults:
                if fault.tag == tag and fault.nth == count:
                    self._frame_faults.remove(fault)
                    self.fired.append((f"{fault.kind}-frame", tag, count))
                    if fault.kind == "delay":
                        return ("delay", fault.seconds)
                    return fault.kind
        return None

    def connect_attempt(self, index: int) -> bool:
        """True when this connect to ``index`` should be refused."""
        with self._lock:
            remaining = self._refusals.get(index, 0)
            if remaining > 0:
                self._refusals[index] = remaining - 1
                self.fired.append(("refuse-connect", index, self._packets))
                return True
        return False

    def corrupt(self, payload: bytes) -> bytes:
        """Flip 1-4 seeded random bytes of ``payload`` (never a no-op)."""
        if not payload:
            return b"\xff"
        data = bytearray(payload)
        with self._lock:
            flips = int(self._rng.integers(1, 5))
            for _ in range(flips):
                pos = int(self._rng.integers(0, len(data)))
                data[pos] ^= int(self._rng.integers(1, 256))
        return bytes(data)


_PROCESS_KINDS = {"kill-instance", "kill-worker", "wedge-instance", "wedge-worker"}
_FRAME_KINDS = {"drop-frame", "corrupt-frame", "delay-frame"}


def parse_fault_specs(specs, seed: int = 0) -> FaultPlan:
    """Parse CLI ``--inject-fault`` spec strings into a :class:`FaultPlan`.

    Grammar (one spec per string)::

        kill-instance:IDX@N      SIGKILL instance IDX at routed packet N
        kill-worker:IDX@N        SIGKILL shard worker IDX at packet N
        wedge-instance:IDX@N     wedge instance IDX at packet N
        wedge-worker:IDX@N       wedge worker IDX's queue at packet N
        refuse-connect:IDX       refuse the next connect to instance IDX
        refuse-connect:IDX*K     refuse the next K connects
        drop-frame:TAG#K         drop the Kth TAG frame
        corrupt-frame:TAG#K      corrupt the Kth TAG frame
        delay-frame:TAG#K@SECS   delay the Kth TAG frame by SECS seconds
    """
    plan = FaultPlan(seed=seed)
    for spec in specs:
        kind, _, rest = spec.partition(":")
        if not rest:
            raise FaultSpecError(f"fault spec {spec!r}: expected KIND:ARGS")
        try:
            if kind in _PROCESS_KINDS:
                index_text, _, packet_text = rest.partition("@")
                if not packet_text:
                    raise FaultSpecError(
                        f"fault spec {spec!r}: expected {kind}:IDX@PACKET"
                    )
                fault = _ProcessFault(kind, int(index_text), int(packet_text))
                plan._process_faults.append(fault)
            elif kind == "refuse-connect":
                index_text, _, times_text = rest.partition("*")
                plan.refuse_connect(int(index_text), int(times_text) if times_text else 1)
            elif kind in _FRAME_KINDS:
                tag, _, nth_text = rest.partition("#")
                if not nth_text:
                    raise FaultSpecError(f"fault spec {spec!r}: expected {kind}:TAG#K")
                if kind == "delay-frame":
                    nth_text, _, secs_text = nth_text.partition("@")
                    if not secs_text:
                        raise FaultSpecError(
                            f"fault spec {spec!r}: expected delay-frame:TAG#K@SECS"
                        )
                    plan.delay_frame(tag, int(nth_text), float(secs_text))
                else:
                    fault = _FrameFault(kind.removesuffix("-frame"), tag, int(nth_text))
                    plan._frame_faults.append(fault)
            else:
                raise FaultSpecError(f"fault spec {spec!r}: unknown kind {kind!r}")
        except ValueError as error:
            if isinstance(error, FaultSpecError):
                raise
            raise FaultSpecError(f"fault spec {spec!r}: {error}") from error
    return plan
