"""Columnar packet representation: the ingest-side counterpart of the engine.

The object pipeline parses every record into a :class:`~repro.netstack.packet.Packet`
(two dataclasses, a decoded option list, a payload slice) before any feature
is computed — per-packet Python that caps streaming throughput well below the
batched scoring path.  This module keeps a capture block as **structured
NumPy columns** instead:

* :func:`parse_packet_columns` turns a block buffer plus record offsets into
  a :class:`PacketColumns` — every fixed IP/TCP header field is sliced out of
  a gathered ``(n, 20)`` byte matrix, IP/TCP checksums are validated with two
  prefix-sum passes over the whole block, and the dominant TCP option layouts
  (no options; a lone Timestamp with NOP padding) are recognised vectorized.
  Only genuinely irregular records (exotic options, reserved bits, truncated
  headers) fall back to the per-packet reference parser, whose semantics the
  fast path reproduces **exactly** — equality is enforced by
  ``tests/features/test_columnar_equivalence.py``.
* :class:`ColumnPacketView` is a per-packet handle over one column row.  It
  exposes just enough of the :class:`Packet` surface (timestamps, flag bits,
  addresses/ports, direction) for flow assembly and the streaming runtime,
  and materialises a full ``Packet`` only on demand.
* :meth:`PacketColumns.from_packets` converts in-memory packets, so replayed
  object streams can ride the same vectorized feature path.

The 32 Table-7 features are computed from these columns by
:meth:`repro.features.fields.RawFeatureExtractor.extract_packet_trains`.
"""

from __future__ import annotations

import pickle
import struct
import weakref
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.netstack.options import (
    decode_options,
    encode_options,
    summarize_feature_options,
)
from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TCP_BASE_HEADER_LENGTH, TcpFlags

# Column names shared by :meth:`PacketColumns.concatenate` and the dataclass;
# ``timestamp`` is float64, ``mss``/``ws_shift``/``ut_timeout``/``md5_ok``
# are float64 feature values, the ``*_ok``/``ts_present``/``ip_options``
# columns are bool and everything else is int64.
_ARRAY_FIELDS = (
    "timestamp",
    "src",
    "dst",
    "src_port",
    "dst_port",
    "seq",
    "ack",
    "flags",
    "window",
    "urgent",
    "data_offset",
    "payload_len",
    "ihl",
    "version",
    "tos",
    "ttl",
    "total_length",
    "ip_options",
    "ip_ok",
    "tcp_ok",
    "mss",
    "ws_shift",
    "ut_timeout",
    "md5_ok",
    "ts_present",
    "tsval",
    "tsecr",
    "key_ip_a",
    "key_port_a",
    "key_ip_b",
    "key_port_b",
)

_FLOAT_FIELDS = frozenset(("timestamp", "mss", "ws_shift", "ut_timeout", "md5_ok"))
_BOOL_FIELDS = frozenset(("ip_options", "ip_ok", "tcp_ok", "ts_present"))


def _field_dtype(name: str) -> np.dtype:
    if name in _FLOAT_FIELDS:
        return np.dtype(np.float64)
    if name in _BOOL_FIELDS:
        return np.dtype(np.bool_)
    return np.dtype(np.int64)


#: ``pack_block`` wire format (version 1): a fixed little-endian header —
#: magic, version, materialisation-backing kind, row count, backing section
#: length — followed by every ``_ARRAY_FIELDS`` column as raw contiguous
#: bytes (sizes derived from the row count and each field's fixed dtype),
#: then the backing section.  ``RAW`` backing ships per-row capture lengths
#: plus the compacted raw packet bytes (offsets are rebuilt by a cumulative
#: sum on unpack); ``PACKETS`` backing pickles the original ``Packet``
#: objects; ``NONE`` drops materialisation entirely.
_PACK_MAGIC = b"CPB"
_PACK_VERSION = 1
_PACK_HEADER = struct.Struct("<3sBBxxxQQ")
_BACKING_NONE = 0
_BACKING_RAW = 1
_BACKING_PACKETS = 2


class BlockLeaseClosedError(RuntimeError):
    """A column was read after the :class:`BlockLease` backing it was closed."""


class _ClosedColumn:
    """Sentinel installed over every column of an invalidated block.

    Any read — indexing, iteration, array conversion, attribute access —
    raises :class:`BlockLeaseClosedError`, so a view that outlives its lease
    fails deterministically instead of reading unmapped (or recycled) memory.
    """

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def _raise(self) -> None:
        raise BlockLeaseClosedError(
            f"column {self._name!r} was read after its BlockLease was closed"
        )

    def __getitem__(self, index: object) -> None:
        self._raise()

    def __len__(self) -> int:
        self._raise()
        return 0  # pragma: no cover - unreachable

    def __iter__(self) -> None:
        self._raise()

    def __array__(self, dtype: object = None, copy: object = None) -> None:
        self._raise()

    def __getattr__(self, attribute: str) -> None:
        self._raise()


def _invalidate_columns(columns: "PacketColumns") -> None:
    """Swap every array of ``columns`` for a :class:`_ClosedColumn` sentinel."""
    for name in (*_ARRAY_FIELDS, "buffer", "offsets", "lengths"):
        if getattr(columns, name, None) is not None:
            setattr(columns, name, _ClosedColumn(name))


class BlockLease:
    """Lifetime handle for the borrowed buffer behind unpacked blocks.

    :func:`unpack_block` builds zero-copy ``frombuffer`` views, so the
    unpacked columns are only valid while the wire buffer they view stays
    mapped.  When that buffer is owned elsewhere — a POSIX shared-memory
    segment mapped by a process shard worker, a socket receive buffer being
    recycled — the owner wraps its hold in a ``BlockLease`` and passes it to
    ``unpack_block``, which registers every produced :class:`PacketColumns`
    on the lease:

    * :meth:`close` (or exiting the lease's ``with`` block) **invalidates**
      every registered block first — each column is replaced by a sentinel
      that raises :class:`BlockLeaseClosedError` on any read — and then
      releases the buffer hold.  Use it to revoke views early.
    * :meth:`release` drops the buffer hold *without* invalidation; it is the
      refcount-style path for when the columns are already unreachable (e.g.
      a ``weakref.finalize`` on the block).

    Either way the ``on_release`` callback fires exactly once, which is where
    the buffer's owner unmaps/recycles it (the streaming runtime's extension
    of the shared-memory ack protocol: a segment is returned for unmapping
    only after every column view on it has been released or revoked).
    """

    __slots__ = ("_blocks", "_on_release", "_closed", "__weakref__")

    def __init__(self, on_release: Callable[[], None] | None = None) -> None:
        self._blocks: list[weakref.ref] = []
        self._on_release = on_release
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def adopt(self, columns: "PacketColumns") -> None:
        """Register ``columns`` as viewing this lease's buffer."""
        if self._closed:
            raise BlockLeaseClosedError("cannot adopt columns into a closed BlockLease")
        self._blocks.append(weakref.ref(columns))

    def close(self) -> None:
        """Revoke every registered view, then release the buffer hold."""
        if self._closed:
            return
        for ref in self._blocks:
            columns = ref()
            if columns is not None:
                _invalidate_columns(columns)
        self.release()

    def release(self) -> None:
        """Release the buffer hold without invalidating columns.

        Safe only when the registered columns are unreachable (or known to
        never be read again); :meth:`close` is the deterministic variant.
        """
        if self._closed:
            return
        self._closed = True
        self._blocks.clear()
        if self._on_release is not None:
            callback, self._on_release = self._on_release, None
            callback()

    def __enter__(self) -> "BlockLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class ColumnPacketView:
    """One packet of a :class:`PacketColumns`, duck-typed like a ``Packet``.

    The view carries the handful of scalars flow assembly touches per packet
    (timestamp, flag bits, endpoint identifiers) in slots, and answers
    ``view.ip`` / ``view.tcp`` with **itself** — the attribute names the
    pipeline reads (``ip.src``, ``tcp.src_port``, ``tcp.is_fin``, …) do not
    collide, so one object serves as packet, IP header and TCP header view.
    Anything deeper (options, payload, serialisation) goes through
    :meth:`materialize`, which builds a real :class:`Packet`.
    """

    __slots__ = (
        "columns",
        "index",
        "timestamp",
        "direction",
        "injected",
        "flags",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "_key",
    )

    def __init__(self, columns, index, timestamp, flags, src, dst, src_port, dst_port,
                 key=None, direction=Direction.CLIENT_TO_SERVER, injected=False):
        self.columns = columns
        self.index = index
        self.timestamp = timestamp
        self.direction = direction
        self.injected = injected
        self.flags = flags
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self._key = key

    # -------------------------------------------------- Packet-like surface
    @property
    def ip(self) -> "ColumnPacketView":
        return self

    @property
    def tcp(self) -> "ColumnPacketView":
        return self

    @property
    def seq(self) -> int:
        return int(self.columns.seq[self.index])

    @property
    def ack(self) -> int:
        return int(self.columns.ack[self.index])

    @property
    def payload_length(self) -> int:
        return int(self.columns.payload_len[self.index])

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN)

    @property
    def is_ack(self) -> bool:
        return bool(self.flags & TcpFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TcpFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TcpFlags.RST)

    def has_flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    def flow_key(self):
        """The canonical :class:`~repro.netstack.flow.FlowKey` of this packet
        (normalised vectorized and deduplicated at parse time)."""
        if self._key is None:
            self._key = self.columns.flow_key(self.index)
        return self._key

    # ------------------------------------------------------- materialisation
    def materialize(self) -> Packet:
        """The full :class:`Packet` for this row (parsed or stored original).

        Buffer-backed columns re-parse the packet's raw bytes; packet-backed
        columns return the original object.  Either way the result carries
        this view's ``direction``.
        """
        packet = self.columns.packet(self.index)
        if packet.direction is not self.direction or packet.injected != self.injected:
            if self.columns.packets is not None:
                packet = packet.copy(direction=self.direction, injected=self.injected)
            else:
                packet.direction = self.direction
                packet.injected = self.injected
        return packet

    def copy(self, **overrides) -> Packet:
        """Materialised deep-enough copy (mirrors :meth:`Packet.copy`)."""
        clone = self.materialize().copy(direction=self.direction, injected=self.injected)
        for key, value in overrides.items():
            setattr(clone, key, value)
        return clone

    def summary(self) -> str:
        return self.materialize().summary()


@dataclass
class PacketColumns:
    """A block of TCP/IPv4 packets as structured NumPy columns.

    All header fields the Table-7 feature set reads are first-class arrays
    (one row per packet), checksum validity is precomputed as bits, and the
    canonical bidirectional flow key is pre-normalised into the ``key_*``
    columns.  Raw capture bytes (``buffer``/``offsets``/``lengths``) or the
    original ``packets`` are retained so any row can be materialised back
    into a :class:`Packet` on demand — attack injection and debugging keep
    full fidelity while the hot path never builds packet objects.
    """

    timestamp: np.ndarray  # float64 capture timestamps
    src: np.ndarray  # int64 IPv4 source address
    dst: np.ndarray  # int64 IPv4 destination address
    src_port: np.ndarray
    dst_port: np.ndarray
    seq: np.ndarray
    ack: np.ndarray
    flags: np.ndarray  # int64, 9 flag bits incl. NS
    window: np.ndarray
    urgent: np.ndarray
    data_offset: np.ndarray  # on-wire (or effective) data offset, in words
    payload_len: np.ndarray
    ihl: np.ndarray  # on-wire (or effective) IHL, in words
    version: np.ndarray
    tos: np.ndarray
    ttl: np.ndarray
    total_length: np.ndarray  # on-wire (or effective) IP total length
    ip_options: np.ndarray  # bool: non-empty IP options present
    ip_ok: np.ndarray  # bool: IP header checksum verifies
    tcp_ok: np.ndarray  # bool: TCP checksum verifies
    mss: np.ndarray  # float64 option values (0.0 when absent)
    ws_shift: np.ndarray
    ut_timeout: np.ndarray
    md5_ok: np.ndarray  # float64: 0.0 only for an invalid in-memory MD5 option
    ts_present: np.ndarray  # bool: well-formed Timestamp option present
    tsval: np.ndarray  # int64 raw 32-bit TSval (0 when absent)
    tsecr: np.ndarray
    key_ip_a: np.ndarray  # canonical flow key (lower endpoint first)
    key_port_a: np.ndarray
    key_ip_b: np.ndarray
    key_port_b: np.ndarray
    # Materialisation backing: raw bytes + per-row spans, or original packets.
    buffer: np.ndarray | None = None  # uint8 block buffer
    offsets: np.ndarray | None = None  # int64 start of each raw IPv4 packet
    lengths: np.ndarray | None = None  # int64 captured length of each packet
    packets: list[Packet] | None = None
    # Lazily built, deduplicated FlowKey per row (repeated flows share one
    # object, so downstream dict probes hit the cached hash and identity).
    _flow_keys: list[object] | None = None
    # Lifetime handle when the arrays view a borrowed buffer (shared memory,
    # socket receive buffer); holding it here keeps the lease alive exactly
    # as long as some view of this block is.
    lease: BlockLease | None = None

    def __len__(self) -> int:
        return self.timestamp.shape[0]

    # ------------------------------------------------------------ constructors
    @classmethod
    def empty(cls) -> "PacketColumns":
        kwargs = {}
        for name in _ARRAY_FIELDS:
            if name == "timestamp":
                kwargs[name] = np.zeros(0, dtype=np.float64)
            elif name in ("mss", "ws_shift", "ut_timeout", "md5_ok"):
                kwargs[name] = np.zeros(0, dtype=np.float64)
            elif name in ("ip_options", "ip_ok", "tcp_ok", "ts_present"):
                kwargs[name] = np.zeros(0, dtype=bool)
            else:
                kwargs[name] = np.zeros(0, dtype=np.int64)
        return cls(**kwargs)

    @classmethod
    def concatenate(cls, blocks: Sequence["PacketColumns"]) -> "PacketColumns":
        """Stitch several blocks into one (used by whole-file reads)."""
        blocks = [block for block in blocks if len(block)]
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        kwargs = {
            name: np.concatenate([getattr(block, name) for block in blocks])
            for name in _ARRAY_FIELDS
        }
        if all(block.buffer is not None for block in blocks):
            base = 0
            offset_parts = []
            buffers = []
            for block in blocks:
                buffers.append(block.buffer)
                offset_parts.append(block.offsets + base)
                base += block.buffer.shape[0]
            kwargs["buffer"] = np.concatenate(buffers)
            kwargs["offsets"] = np.concatenate(offset_parts)
            kwargs["lengths"] = np.concatenate([block.lengths for block in blocks])
        elif all(block.packets is not None for block in blocks):
            merged: list[Packet] = []
            for block in blocks:
                merged.extend(block.packets)
            kwargs["packets"] = merged
        return cls(**kwargs)

    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketColumns":
        """Columnar view of in-memory packets.

        Every per-packet scalar is computed with the same accessors the
        per-packet feature extractor uses (effective header sizes, checksum
        validity including ``checksum_valid_hint``, first-well-formed-option
        scan), so columnar feature extraction over the result matches the
        reference exactly — including for attack-crafted packets that cannot
        round-trip through serialisation (e.g. an MD5 option flagged
        invalid).
        """
        packets = list(packets)
        n = len(packets)
        if n == 0:
            return cls.empty()
        rows = np.zeros((n, 18), dtype=np.int64)
        timestamp = np.zeros(n, dtype=np.float64)
        option_values = np.zeros((n, 4), dtype=np.float64)  # mss, ws, ut, md5_ok
        option_values[:, 3] = 1.0
        bools = np.zeros((n, 4), dtype=bool)
        for i, packet in enumerate(packets):
            tcp = packet.tcp
            ip = packet.ip
            payload_len = len(packet.payload)
            mss, ts_option, ws, ut, md5 = summarize_feature_options(tcp.options)
            header_length = TCP_BASE_HEADER_LENGTH + len(encode_options(tcp.options))
            data_offset = tcp.data_offset if tcp.data_offset is not None else header_length // 4
            segment_length = header_length + payload_len
            rows[i] = (
                ip.src,
                ip.dst,
                tcp.src_port,
                tcp.dst_port,
                tcp.seq,
                tcp.ack,
                tcp.flags,
                tcp.window,
                tcp.urgent_pointer,
                data_offset,
                payload_len,
                ip.effective_ihl(),
                ip.version,
                ip.tos,
                ip.ttl,
                ip.effective_total_length(segment_length),
                ts_option.tsval if ts_option is not None else 0,
                ts_option.tsecr if ts_option is not None else 0,
            )
            timestamp[i] = packet.timestamp
            if mss is not None:
                option_values[i, 0] = float(mss.value)
            if ws is not None:
                option_values[i, 1] = float(ws.shift)
            if ut is not None:
                option_values[i, 2] = float(ut.timeout)
            if md5 is not None and not md5.valid:
                option_values[i, 3] = 0.0
            bools[i] = (
                len(ip.options) > 0,
                ip.has_correct_checksum(payload_length=segment_length),
                tcp.has_correct_checksum(ip.src, ip.dst, packet.payload),
                ts_option is not None,
            )
        (
            src, dst, src_port, dst_port, seq, ack, flags, window, urgent,
            data_offset, payload_len, ihl, version, tos, ttl, total_length,
            tsval, tsecr,
        ) = (np.ascontiguousarray(column) for column in rows.T)
        key_swap = (src > dst) | ((src == dst) & (src_port > dst_port))
        return cls(
            timestamp=timestamp,
            src=src,
            dst=dst,
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent=urgent,
            data_offset=data_offset,
            payload_len=payload_len,
            ihl=ihl,
            version=version,
            tos=tos,
            ttl=ttl,
            total_length=total_length,
            ip_options=bools[:, 0].copy(),
            ip_ok=bools[:, 1].copy(),
            tcp_ok=bools[:, 2].copy(),
            mss=option_values[:, 0].copy(),
            ws_shift=option_values[:, 1].copy(),
            ut_timeout=option_values[:, 2].copy(),
            md5_ok=option_values[:, 3].copy(),
            ts_present=bools[:, 3].copy(),
            tsval=tsval,
            tsecr=tsecr,
            key_ip_a=np.where(key_swap, dst, src),
            key_port_a=np.where(key_swap, dst_port, src_port),
            key_ip_b=np.where(key_swap, src, dst),
            key_port_b=np.where(key_swap, src_port, dst_port),
            packets=packets,
        )

    # -------------------------------------------------------------- accessors
    def flow_keys(self) -> list[object]:
        """One :class:`~repro.netstack.flow.FlowKey` per row, deduplicated.

        Built once per block: packets of the same flow share one key object,
        so every later dict probe (flow table, shard router) short-circuits
        on identity instead of re-hashing and comparing 4-tuples.
        """
        if self._flow_keys is None:
            from repro.netstack.flow import FlowKey

            cache: dict[tuple[int, int, int, int], object] = {}
            keys: list[object] = []
            for quad in zip(
                self.key_ip_a.tolist(),
                self.key_port_a.tolist(),
                self.key_ip_b.tolist(),
                self.key_port_b.tolist(),
                strict=True,
            ):
                key = cache.get(quad)
                if key is None:
                    key = FlowKey(*quad)
                    cache[quad] = key
                keys.append(key)
            self._flow_keys = keys
        return self._flow_keys

    def flow_key(self, index: int):
        return self.flow_keys()[index]

    def packet(self, index: int) -> Packet:
        """Materialise row ``index`` as a full :class:`Packet`."""
        if self.packets is not None:
            return self.packets[index]
        if self.buffer is None:
            raise ValueError("PacketColumns has no materialisation backing")
        start = int(self.offsets[index])
        stop = start + int(self.lengths[index])
        return Packet.from_bytes(
            self.buffer[start:stop].tobytes(), timestamp=float(self.timestamp[index])
        )

    def views(self) -> list[ColumnPacketView]:
        """Per-packet view handles, in row order (bulk-constructed).

        Packet-backed columns seed each view's ``direction`` and ``injected``
        from the original packet (attack ground truth survives the columnar
        round trip); wire-backed columns start with the parser defaults.
        """
        cls = ColumnPacketView
        if self.packets is not None:
            directions = [packet.direction for packet in self.packets]
            injected = [packet.injected for packet in self.packets]
        else:
            directions = [Direction.CLIENT_TO_SERVER] * len(self)
            injected = [False] * len(self)
        return [
            cls(self, index, ts, flag, src, dst, sport, dport, key, direction, marked)
            for index, (ts, flag, src, dst, sport, dport, key, direction, marked) in enumerate(
                zip(
                    self.timestamp.tolist(),
                    self.flags.tolist(),
                    self.src.tolist(),
                    self.dst.tolist(),
                    self.src_port.tolist(),
                    self.dst_port.tolist(),
                    self.flow_keys(),
                    directions,
                    injected,
                    strict=True,
                )
            )
        ]


    # ------------------------------------------------------------ wire format
    def pack_block(
        self, indices: np.ndarray | None = None, *, backing: str = "auto"
    ) -> bytes:
        """Serialise (a row subset of) this block into the compact wire format.

        The process-backed streaming runtime ships capture blocks to shard
        workers with this instead of pickling packet objects: every scalar
        column crosses the process boundary as raw array bytes, and the
        materialisation backing travels as the compacted raw packet bytes
        (buffer-backed blocks) or the pickled originals (packet-backed
        blocks).  ``indices`` selects rows (in the given order); ``None``
        packs the whole block.  ``backing="none"`` omits materialisation —
        smallest wire size, but :meth:`packet`/``materialize()`` on the
        unpacked side will fail.  :func:`unpack_block` is the exact inverse:
        every column round-trips bit for bit.
        """
        if backing not in ("auto", "none"):
            raise ValueError(f"unknown backing mode {backing!r} (expected auto or none)")
        idx: np.ndarray | None = None
        if indices is not None:
            idx = np.asarray(indices, dtype=np.int64)
        n = len(self) if idx is None else int(idx.size)
        sections: list[bytes] = []
        for name in _ARRAY_FIELDS:
            array = getattr(self, name)
            selected = array if idx is None else array[idx]
            sections.append(
                np.ascontiguousarray(selected, dtype=_field_dtype(name)).tobytes()
            )
        kind = _BACKING_NONE
        payload = b""
        if backing == "auto" and self.buffer is not None:
            kind = _BACKING_RAW
            lengths = self.lengths if idx is None else self.lengths[idx]
            offsets = self.offsets if idx is None else self.offsets[idx]
            lengths = np.ascontiguousarray(lengths, dtype=np.int64)
            total = int(lengths.sum())
            ends = np.cumsum(lengths)
            # Compact the selected spans: gather[i] walks each row's source
            # span contiguously into the new buffer.
            gather = np.repeat(offsets - (ends - lengths), lengths) + np.arange(total)
            payload = lengths.tobytes() + np.ascontiguousarray(self.buffer[gather]).tobytes()
        elif backing == "auto" and self.packets is not None:
            kind = _BACKING_PACKETS
            selected_packets = (
                self.packets if idx is None else [self.packets[i] for i in idx.tolist()]
            )
            payload = pickle.dumps(selected_packets, protocol=pickle.HIGHEST_PROTOCOL)
        header = _PACK_HEADER.pack(_PACK_MAGIC, _PACK_VERSION, kind, n, len(payload))
        return b"".join([header, *sections, payload])


def _wire_view(view: memoryview, dtype: np.dtype, count: int, offset: int) -> np.ndarray:
    """A zero-copy, **read-only** array over one wire-format section.

    ``frombuffer`` inherits the buffer's writability — a shared-memory
    mapping is writable, and a stray in-place write there would corrupt the
    block under every other worker's feet — so the view is always pinned
    read-only, matching the bytes-backed case.
    """
    array = np.frombuffer(view, dtype=dtype, count=count, offset=offset)
    if array.flags.writeable:
        array.flags.writeable = False
    return array


def unpack_block(
    data: bytes | bytearray | memoryview, *, lease: BlockLease | None = None
) -> PacketColumns:
    """Rebuild a :class:`PacketColumns` from :meth:`PacketColumns.pack_block`.

    Scalar columns are zero-copy ``frombuffer`` views over ``data`` (always
    read-only, even over a writable buffer), so the unpacked block's memory
    is the wire payload itself.  When ``data`` is a borrowed mapping — a
    shared-memory segment, a recycled receive buffer — pass the owner's
    :class:`BlockLease`; the produced columns are registered on it so the
    owner can revoke the views (:meth:`BlockLease.close`) or learn when they
    have all been dropped (``on_release``).
    """
    view = memoryview(data)
    magic, version, kind, n, backing_len = _PACK_HEADER.unpack_from(view, 0)
    if magic != _PACK_MAGIC:
        raise ValueError("not a packed PacketColumns block (bad magic)")
    if version != _PACK_VERSION:
        raise ValueError(f"unsupported packed-block version {version}")
    position = _PACK_HEADER.size
    kwargs: dict[str, object] = {}
    for name in _ARRAY_FIELDS:
        dtype = _field_dtype(name)
        kwargs[name] = _wire_view(view, dtype, n, position)
        position += dtype.itemsize * n
    if kind == _BACKING_RAW:
        lengths = _wire_view(view, np.dtype(np.int64), n, position)
        position += 8 * n
        raw_size = backing_len - 8 * n
        kwargs["buffer"] = _wire_view(view, np.dtype(np.uint8), raw_size, position)
        ends = np.cumsum(lengths)
        kwargs["offsets"] = ends - lengths
        kwargs["lengths"] = lengths
    elif kind == _BACKING_PACKETS:
        kwargs["packets"] = pickle.loads(view[position : position + backing_len])
    elif kind != _BACKING_NONE:
        raise ValueError(f"unknown packed-block backing kind {kind}")
    columns = PacketColumns(**kwargs)
    if lease is not None:
        lease.adopt(columns)
        columns.lease = lease
    return columns


def _fold_checksum(totals: np.ndarray) -> np.ndarray:
    """Vectorized RFC 1071 end-around-carry fold of word sums."""
    folded = totals % 0xFFFF
    folded[(folded == 0) & (totals > 0)] = 0xFFFF
    return folded


class _BlockSums:
    """O(1) big-endian 16-bit word sums over arbitrary spans of one buffer.

    For a span starting at ``a``, the word sum is
    ``sum(bytes) + 255 * sum(bytes at even positions relative to a)`` —
    bytes at even relative offsets are the high halves of the words (and the
    implicit zero pad of an odd-length span costs nothing).  Two prefix sums
    (all bytes; bytes at even absolute indices) therefore answer any
    ``(start, length)`` range in O(1), which is what lets IP/TCP checksums
    for a whole block verify in a handful of NumPy operations.
    """

    def __init__(self, data: np.ndarray) -> None:
        size = data.shape[0]
        # A byte-sum prefix fits int32 as long as size * 255 < 2**31; halving
        # the prefix width halves the memory traffic of the dominant pass.
        dtype = np.int32 if size < 8_000_000 else np.int64
        self._all = np.empty(size + 1, dtype=dtype)
        self._all[0] = 0
        np.cumsum(data, dtype=dtype, out=self._all[1:])
        evens = data[0::2]
        self._even = np.empty(evens.shape[0] + 1, dtype=dtype)
        self._even[0] = 0
        np.cumsum(evens, dtype=dtype, out=self._even[1:])

    def word_sum(self, starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
        stops = starts + lengths
        total = (self._all[stops] - self._all[starts]).astype(np.int64)
        # Number of even absolute indices below x is (x + 1) // 2.
        even_index_sum = (
            self._even[(stops + 1) // 2] - self._even[(starts + 1) // 2]
        ).astype(np.int64)
        even_relative = np.where(starts % 2 == 0, even_index_sum, total - even_index_sum)
        return total + 255 * even_relative


def _gather(data: np.ndarray, starts: np.ndarray, width: int) -> np.ndarray:
    """Gather ``width`` consecutive bytes per row into an ``(n, width)`` int64
    matrix (rows must be fully inside ``data``)."""
    return data[starts[:, None] + np.arange(width)].astype(np.int64)


def _be16(matrix: np.ndarray, column: int) -> np.ndarray:
    return (matrix[:, column] << 8) | matrix[:, column + 1]


def _be32(matrix: np.ndarray, column: int) -> np.ndarray:
    return (
        (matrix[:, column] << 24)
        | (matrix[:, column + 1] << 16)
        | (matrix[:, column + 2] << 8)
        | matrix[:, column + 3]
    )


def parse_packet_columns(
    data: np.ndarray,
    offsets: np.ndarray,
    lengths: np.ndarray,
    timestamps: np.ndarray,
    *,
    strict: bool = False,
) -> PacketColumns:
    """Vectorized TCP/IPv4 parse of raw packets inside one block buffer.

    ``offsets``/``lengths`` delimit each raw IPv4 packet in ``data`` (link
    layer already stripped); records that the object path would reject
    (truncated IP/TCP header, non-TCP protocol) are dropped, or raise
    :class:`ValueError` when ``strict`` is set — mirroring
    :meth:`PcapReader.packets`.

    Field semantics replicate :meth:`Packet.from_bytes` +
    :class:`~repro.features.fields.RawFeatureExtractor` bit for bit: checksum
    validity is what re-serialisation would verify (so records whose parse is
    lossy — reserved flag bits, non-canonical or truncated options — are
    delegated to the per-packet oracle), and option summaries honour the
    first-well-formed-option rule.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    timestamps = np.asarray(timestamps, dtype=np.float64)
    if offsets.size == 0:
        return PacketColumns.empty()

    valid = lengths >= 20
    if not valid.any():
        if strict:
            raise ValueError("truncated IPv4 header in record 0 of block")
        return PacketColumns.empty()
    # Rows too short for an IPv4 header are gathered at some valid row's
    # offset (in bounds by construction) and masked out afterwards.
    safe_off = np.where(valid, offsets, offsets[int(np.flatnonzero(valid)[0])])
    ip_fixed = _gather(data, safe_off, 20)
    version_ihl = ip_fixed[:, 0]
    ihl = version_ihl & 0xF
    protocol = ip_fixed[:, 9]
    # ``Packet.from_bytes``: header length is ``(ihl or 5) * 4`` clamped to 20.
    tcp_start = np.maximum(np.where(ihl == 0, 5, ihl) * 4, 20)
    valid &= protocol == 6
    tcp_truncated = valid & (lengths - tcp_start < TCP_BASE_HEADER_LENGTH)
    if strict and (~valid | tcp_truncated).any():
        bad = int(np.flatnonzero(~valid | tcp_truncated)[0])
        raise ValueError(
            f"malformed record {bad} of block: truncated header or non-TCP protocol"
        )
    valid &= ~tcp_truncated

    keep = np.flatnonzero(valid)
    if keep.size == 0:
        return PacketColumns.empty()
    offsets = offsets[keep]
    lengths = lengths[keep]
    timestamps = timestamps[keep]
    ip_fixed = ip_fixed[keep]
    ihl = ihl[keep]
    tcp_start = tcp_start[keep]
    n = keep.size

    version = ip_fixed[:, 0] >> 4
    tos = ip_fixed[:, 1]
    total_length = _be16(ip_fixed, 2)
    flags_fragment = _be16(ip_fixed, 6)
    ttl = ip_fixed[:, 8]
    ip_checksum = _be16(ip_fixed, 10)
    src = _be32(ip_fixed, 12)
    dst = _be32(ip_fixed, 16)

    tcp_fixed = _gather(data, offsets + tcp_start, 20)
    src_port = _be16(tcp_fixed, 0)
    dst_port = _be16(tcp_fixed, 2)
    seq = _be32(tcp_fixed, 4)
    ack = _be32(tcp_fixed, 8)
    offset_reserved_flags = _be16(tcp_fixed, 12)
    data_offset = offset_reserved_flags >> 12
    flags = (offset_reserved_flags & 0xFF) | (offset_reserved_flags & 0x100)
    window = _be16(tcp_fixed, 14)
    tcp_checksum = _be16(tcp_fixed, 16)
    urgent = _be16(tcp_fixed, 18)

    tcp_header_len = np.maximum(data_offset * 4, TCP_BASE_HEADER_LENGTH)
    payload_len = np.maximum(lengths - tcp_start - tcp_header_len, 0)
    ip_options = (ihl * 4 > 20) & (lengths >= ihl * 4)
    has_options = (data_offset > 5) & (lengths - tcp_start >= data_offset * 4)

    # ------------------------------------------------------- TCP option parse
    mss = np.zeros(n, dtype=np.float64)
    ws_shift = np.zeros(n, dtype=np.float64)
    ut_timeout = np.zeros(n, dtype=np.float64)
    md5_ok = np.ones(n, dtype=np.float64)  # wire-parsed MD5 options verify
    ts_present = np.zeros(n, dtype=bool)
    tsval = np.zeros(n, dtype=np.int64)
    tsecr = np.zeros(n, dtype=np.int64)
    # Canonical == re-encoding the decoded options reproduces the wire bytes,
    # which is what checksum re-verification serialises.
    canonical = ~has_options & (data_offset >= 5)

    ts_layout = has_options & (data_offset == 8)
    if ts_layout.any():
        rows = np.flatnonzero(ts_layout)
        opts = _gather(data, offsets[rows] + tcp_start[rows] + 20, 12)
        # Layout A: Timestamp first, NOP-padded (what ``encode_options``
        # emits); layout B: Linux-style leading NOPs.
        layout_a = (opts[:, 0] == 8) & (opts[:, 1] == 10) & (opts[:, 10] == 1) & (opts[:, 11] == 1)
        layout_b = (opts[:, 0] == 1) & (opts[:, 1] == 1) & (opts[:, 2] == 8) & (opts[:, 3] == 10)
        for layout, base in ((layout_a, 2), (layout_b, 4)):
            if not layout.any():
                continue
            sel = rows[layout]
            values = opts[layout]
            ts_present[sel] = True
            tsval[sel] = (
                (values[:, base] << 24)
                | (values[:, base + 1] << 16)
                | (values[:, base + 2] << 8)
                | values[:, base + 3]
            )
            tsecr[sel] = (
                (values[:, base + 4] << 24)
                | (values[:, base + 5] << 16)
                | (values[:, base + 6] << 8)
                | values[:, base + 7]
            )
            canonical[sel] = True

    slow_options = np.flatnonzero(has_options & ~canonical)
    for row in slow_options:
        start = int(offsets[row] + tcp_start[row] + 20)
        stop = int(offsets[row] + tcp_start[row] + data_offset[row] * 4)
        raw = data[start:stop].tobytes()
        options = decode_options(raw)
        canonical[row] = encode_options(options) == raw
        mss_o, ts_o, ws_o, ut_o, _md5_o = summarize_feature_options(options)
        if mss_o is not None:
            mss[row] = float(mss_o.value)
        if ws_o is not None:
            ws_shift[row] = float(ws_o.shift)
        if ut_o is not None:
            ut_timeout[row] = float(ut_o.timeout)
        if ts_o is not None:
            ts_present[row] = True
            tsval[row] = ts_o.tsval
            tsecr[row] = ts_o.tsecr

    # ----------------------------------------------------- checksum validation
    sums = _BlockSums(data)
    reserved_ip = (flags_fragment & 0x8000) != 0
    ip_span = np.where(ip_options, ihl * 4, 20)
    ip_regular = ~reserved_ip & ~((ihl > 5) & (lengths < ihl * 4))
    ip_total = sums.word_sum(offsets, ip_span) - ip_checksum
    ip_computed = 0xFFFF - _fold_checksum(ip_total)
    ip_ok = ip_regular & (ip_computed == ip_checksum)

    reserved_tcp = (offset_reserved_flags & 0x0E00) != 0
    options_dropped = (data_offset > 5) & ~has_options
    tcp_regular = ~reserved_tcp & ~options_dropped & canonical
    segment_len = lengths - tcp_start
    pseudo = (
        (src >> 16) + (src & 0xFFFF) + (dst >> 16) + (dst & 0xFFFF) + 6 + segment_len
    )
    tcp_total = sums.word_sum(offsets + tcp_start, segment_len) - tcp_checksum + pseudo
    tcp_computed = 0xFFFF - _fold_checksum(tcp_total)
    tcp_ok = tcp_regular & (tcp_computed == tcp_checksum)

    oracle_rows = np.flatnonzero(~ip_regular | ~tcp_regular)
    for row in oracle_rows:
        start = int(offsets[row])
        stop = start + int(lengths[row])
        packet = Packet.from_bytes(data[start:stop].tobytes())
        ip_ok[row] = packet.ip_checksum_ok()
        tcp_ok[row] = packet.tcp_checksum_ok()

    key_swap = (src > dst) | ((src == dst) & (src_port > dst_port))
    return PacketColumns(
        timestamp=timestamps,
        src=src,
        dst=dst,
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=flags,
        window=window,
        urgent=urgent,
        data_offset=data_offset,
        payload_len=payload_len,
        ihl=ihl,
        version=version,
        tos=tos,
        ttl=ttl,
        total_length=total_length,
        ip_options=ip_options,
        ip_ok=ip_ok,
        tcp_ok=tcp_ok,
        mss=mss,
        ws_shift=ws_shift,
        ut_timeout=ut_timeout,
        md5_ok=md5_ok,
        ts_present=ts_present,
        tsval=tsval,
        tsecr=tsecr,
        key_ip_a=np.where(key_swap, dst, src),
        key_port_a=np.where(key_swap, dst_port, src_port),
        key_ip_b=np.where(key_swap, src, dst),
        key_port_b=np.where(key_swap, src_port, dst_port),
        buffer=data,
        offsets=offsets,
        lengths=lengths,
    )


def columns_of_train(packets: Sequence[object]) -> PacketColumns | None:
    """The shared :class:`PacketColumns` behind ``packets``, or ``None``.

    A train qualifies for the columnar feature path only when every element
    is a :class:`ColumnPacketView` over the same columns object (one capture
    block); anything else extracts through the per-packet reference.
    """
    if not packets:
        return None
    first = packets[0]
    if type(first) is not ColumnPacketView:
        return None
    columns = first.columns
    for packet in packets:
        if type(packet) is not ColumnPacketView or packet.columns is not columns:
            return None
    return columns
