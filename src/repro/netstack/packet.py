"""The :class:`Packet` abstraction: one captured TCP/IPv4 packet.

A packet couples an :class:`~repro.netstack.ip.Ipv4Header`, a
:class:`~repro.netstack.tcp.TcpHeader`, an opaque payload, a capture timestamp
and a logical direction within its connection.  Packets are the unit every
other subsystem operates on: the traffic generator emits them, the attack
simulator mutates/injects them, the conntrack labeller replays them and the
feature extractor reads them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from repro.netstack.ip import Ipv4Header
from repro.netstack.tcp import TcpFlags, TcpHeader


class Direction(enum.IntEnum):
    """Logical direction of a packet within its connection.

    ``CLIENT_TO_SERVER`` is the direction of the connection originator (the
    side that sent the first SYN).
    """

    CLIENT_TO_SERVER = 0
    SERVER_TO_CLIENT = 1

    def flipped(self) -> "Direction":
        return Direction.SERVER_TO_CLIENT if self is Direction.CLIENT_TO_SERVER else Direction.CLIENT_TO_SERVER


@dataclass
class Packet:
    """One TCP/IPv4 packet with capture metadata."""

    ip: Ipv4Header
    tcp: TcpHeader
    payload: bytes = b""
    timestamp: float = 0.0
    direction: Direction = Direction.CLIENT_TO_SERVER
    # Set by the attack injector so that evaluation code can compute
    # localisation ground truth; benign packets leave it False.
    injected: bool = False

    # ------------------------------------------------------------- properties
    @property
    def payload_length(self) -> int:
        return len(self.payload)

    @property
    def flags(self) -> int:
        return self.tcp.flags

    @property
    def flag_names(self) -> list:
        return self.tcp.flag_names

    @property
    def seq(self) -> int:
        return self.tcp.seq

    @property
    def ack(self) -> int:
        return self.tcp.ack

    def sequence_span(self) -> int:
        """Sequence-number space consumed by this packet (payload + SYN/FIN)."""
        span = len(self.payload)
        if self.tcp.has_flag(TcpFlags.SYN):
            span += 1
        if self.tcp.has_flag(TcpFlags.FIN):
            span += 1
        return span

    # ----------------------------------------------------------- wire format
    def to_bytes(self) -> bytes:
        """Serialise the full IP packet (IP header + TCP header + payload)."""
        tcp_bytes = self.tcp.to_bytes(self.ip.src, self.ip.dst, self.payload)
        ip_bytes = self.ip.to_bytes(payload_length=len(tcp_bytes) + len(self.payload))
        return ip_bytes + tcp_bytes + self.payload

    @classmethod
    def from_bytes(cls, data: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse a raw IPv4 packet carrying TCP.

        Raises :class:`ValueError` for non-TCP or truncated input.
        """
        ip_header = Ipv4Header.from_bytes(data)
        header_length = (ip_header.ihl or 5) * 4
        if header_length < 20:
            header_length = 20
        if ip_header.protocol != 6:
            raise ValueError(f"not a TCP packet (protocol={ip_header.protocol})")
        tcp_start = header_length
        tcp_header = TcpHeader.from_bytes(data[tcp_start:])
        tcp_length = tcp_header.effective_data_offset() * 4
        if tcp_length < 20:
            tcp_length = 20
        payload = data[tcp_start + tcp_length :]
        return cls(ip=ip_header, tcp=tcp_header, payload=payload, timestamp=timestamp)

    # ------------------------------------------------------------- validity
    def ip_checksum_ok(self) -> bool:
        """True if the IP header checksum is (or would be) correct."""
        tcp_bytes_length = self.tcp.header_length + len(self.payload)
        return self.ip.has_correct_checksum(payload_length=tcp_bytes_length)

    def tcp_checksum_ok(self) -> bool:
        """True if the TCP checksum is (or would be) correct."""
        return self.tcp.has_correct_checksum(self.ip.src, self.ip.dst, self.payload)

    def ip_total_length_consistent(self) -> bool:
        """True if the declared IP total length matches the actual sizes."""
        actual = self.ip.header_length + self.tcp.header_length + len(self.payload)
        return self.ip.effective_total_length(self.tcp.header_length + len(self.payload)) == actual

    def copy(self, **overrides) -> "Packet":
        """Deep-enough copy (headers and options are copied) with overrides."""
        clone = Packet(
            ip=self.ip.copy(),
            tcp=self.tcp.copy(),
            payload=self.payload,
            timestamp=self.timestamp,
            direction=self.direction,
            injected=self.injected,
        )
        for key, value in overrides.items():
            setattr(clone, key, value)
        return clone

    def summary(self) -> str:
        """One-line human-readable rendering, e.g. for example scripts."""
        flags = "".join(name[0] for name in self.tcp.flag_names) or "-"
        return (
            f"{self.ip.src_address}:{self.tcp.src_port} -> "
            f"{self.ip.dst_address}:{self.tcp.dst_port} "
            f"[{flags}] seq={self.tcp.seq} ack={self.tcp.ack} "
            f"len={len(self.payload)} ttl={self.ip.ttl}"
        )
