"""TCP option encoding and decoding.

Only the options that matter to the paper's feature set (Table 7) get their own
classes: Maximum Segment Size, Window Scale, Timestamps, SACK-permitted, the
MD5 signature option (RFC 2385) and the User Timeout option (RFC 5482).  Any
other kind is preserved as :class:`RawOption` so parsing a capture never loses
information.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from collections.abc import Sequence


class OptionKind:
    """TCP option kind numbers (IANA registry)."""

    END_OF_OPTIONS = 0
    NOP = 1
    MSS = 2
    WINDOW_SCALE = 3
    SACK_PERMITTED = 4
    SACK = 5
    TIMESTAMP = 8
    MD5_SIGNATURE = 19
    USER_TIMEOUT = 28


@dataclass(frozen=True)
class EndOfOptions:
    """Kind 0: end of option list (single byte)."""

    kind: int = OptionKind.END_OF_OPTIONS

    def encode(self) -> bytes:
        return b"\x00"


@dataclass(frozen=True)
class NoOperation:
    """Kind 1: padding byte."""

    kind: int = OptionKind.NOP

    def encode(self) -> bytes:
        return b"\x01"


@dataclass(frozen=True)
class MaximumSegmentSize:
    """Kind 2: maximum segment size, negotiated on SYN packets."""

    value: int
    kind: int = OptionKind.MSS

    def encode(self) -> bytes:
        return struct.pack("!BBH", self.kind, 4, self.value & 0xFFFF)


@dataclass(frozen=True)
class WindowScale:
    """Kind 3: window scale shift count (RFC 7323)."""

    shift: int
    kind: int = OptionKind.WINDOW_SCALE

    def encode(self) -> bytes:
        return struct.pack("!BBB", self.kind, 3, self.shift & 0xFF)


@dataclass(frozen=True)
class SackPermitted:
    """Kind 4: SACK permitted flag, negotiated on SYN packets."""

    kind: int = OptionKind.SACK_PERMITTED

    def encode(self) -> bytes:
        return struct.pack("!BB", self.kind, 2)


@dataclass(frozen=True)
class Timestamp:
    """Kind 8: TSval/TSecr pair (RFC 7323)."""

    tsval: int
    tsecr: int
    kind: int = OptionKind.TIMESTAMP

    def encode(self) -> bytes:
        return struct.pack("!BBII", self.kind, 10, self.tsval & 0xFFFFFFFF, self.tsecr & 0xFFFFFFFF)


@dataclass(frozen=True)
class Md5Signature:
    """Kind 19: TCP MD5 signature option (RFC 2385).

    The reproduction does not compute real MD5 digests (the option only matters
    as a *presence / validity* feature); ``digest`` carries the 16 raw bytes and
    ``valid`` records whether the digest would verify against the connection
    key.  Attack strategies set ``valid=False`` to model a garbage digest.
    """

    digest: bytes = b"\x00" * 16
    valid: bool = True
    kind: int = OptionKind.MD5_SIGNATURE

    def encode(self) -> bytes:
        digest = (self.digest + b"\x00" * 16)[:16]
        return struct.pack("!BB", self.kind, 18) + digest


@dataclass(frozen=True)
class UserTimeout:
    """Kind 28: user timeout option (RFC 5482)."""

    granularity_minutes: bool
    timeout: int
    kind: int = OptionKind.USER_TIMEOUT

    def encode(self) -> bytes:
        value = ((1 if self.granularity_minutes else 0) << 15) | (self.timeout & 0x7FFF)
        return struct.pack("!BBH", self.kind, 4, value)


@dataclass(frozen=True)
class RawOption:
    """Any option kind without a dedicated class; preserved verbatim."""

    kind: int
    data: bytes = b""

    def encode(self) -> bytes:
        return struct.pack("!BB", self.kind, 2 + len(self.data)) + self.data


TcpOption = object  # documentation alias; options are duck-typed on ``.kind`` / ``.encode``


def encode_options(options: Sequence[object]) -> bytes:
    """Encode ``options`` and pad the result to a 4-byte boundary with NOPs."""
    raw = b"".join(option.encode() for option in options)
    remainder = len(raw) % 4
    if remainder:
        raw += b"\x01" * (4 - remainder)
    return raw


def decode_options(data: bytes) -> list[object]:
    """Decode the options area of a TCP header into option objects.

    Malformed trailing bytes (e.g. a truncated option) are preserved as a
    :class:`RawOption` with kind of the offending byte so that parsing never
    raises on hostile input.
    """
    options: list[object] = []
    index = 0
    length = len(data)
    while index < length:
        kind = data[index]
        if kind == OptionKind.END_OF_OPTIONS:
            options.append(EndOfOptions())
            break
        if kind == OptionKind.NOP:
            options.append(NoOperation())
            index += 1
            continue
        if index + 1 >= length:
            options.append(RawOption(kind=kind, data=b""))
            break
        opt_len = data[index + 1]
        if opt_len < 2 or index + opt_len > length:
            options.append(RawOption(kind=kind, data=data[index + 2 :]))
            break
        body = data[index + 2 : index + opt_len]
        options.append(_decode_single(kind, body))
        index += opt_len
    return options


def _decode_single(kind: int, body: bytes) -> object:
    if kind == OptionKind.MSS and len(body) == 2:
        return MaximumSegmentSize(value=struct.unpack("!H", body)[0])
    if kind == OptionKind.WINDOW_SCALE and len(body) == 1:
        return WindowScale(shift=body[0])
    if kind == OptionKind.SACK_PERMITTED and len(body) == 0:
        return SackPermitted()
    if kind == OptionKind.TIMESTAMP and len(body) == 8:
        tsval, tsecr = struct.unpack("!II", body)
        return Timestamp(tsval=tsval, tsecr=tsecr)
    if kind == OptionKind.MD5_SIGNATURE and len(body) == 16:
        return Md5Signature(digest=body)
    if kind == OptionKind.USER_TIMEOUT and len(body) == 2:
        value = struct.unpack("!H", body)[0]
        return UserTimeout(granularity_minutes=bool(value >> 15), timeout=value & 0x7FFF)
    return RawOption(kind=kind, data=body)


def find_option(options: Sequence[object], kind: int) -> object | None:
    """Return the first option of ``kind`` in ``options`` or ``None``."""
    for option in options:
        if getattr(option, "kind", None) == kind:
            return option
    return None


def summarize_feature_options(options: Sequence[object]):
    """One pass over ``options`` for the Table-7 feature set.

    Returns ``(mss, timestamp, window_scale, user_timeout, md5)`` — the first
    *well-formed* option of each kind, or ``None``.  A malformed option (a
    :class:`RawOption` carrying a feature kind, e.g. an MSS with a bad length)
    does not claim its slot, so a later well-formed duplicate still counts.
    This is the single source of truth shared by the per-packet reference
    extractor and the columnar parser's fallback path.
    """
    mss = timestamp = window_scale = user_timeout = md5 = None
    for option in options:
        kind = getattr(option, "kind", None)
        if kind == OptionKind.MSS:
            if mss is None and hasattr(option, "value"):
                mss = option
        elif kind == OptionKind.TIMESTAMP:
            if timestamp is None and hasattr(option, "tsval"):
                timestamp = option
        elif kind == OptionKind.WINDOW_SCALE:
            if window_scale is None and hasattr(option, "shift"):
                window_scale = option
        elif kind == OptionKind.USER_TIMEOUT:
            if user_timeout is None and hasattr(option, "timeout"):
                user_timeout = option
        elif kind == OptionKind.MD5_SIGNATURE and md5 is None and hasattr(option, "valid"):
            md5 = option
    return mss, timestamp, window_scale, user_timeout, md5
