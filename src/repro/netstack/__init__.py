"""Packet substrate: IPv4/TCP headers, checksums, PCAP I/O and flow assembly.

This package stands in for scapy in the original CLAP implementation.  It
provides byte-accurate wire formats so that captures can be written, re-read
and mutated by the attack simulator without losing any of the header fields
the detector relies on.
"""

from repro.netstack.addresses import int_to_ip, ip_to_int, is_private
from repro.netstack.columns import (
    ColumnPacketView,
    PacketColumns,
    columns_of_train,
    parse_packet_columns,
)
from repro.netstack.checksum import (
    internet_checksum,
    ones_complement_sum,
    pseudo_header,
    tcp_checksum,
    verify_checksum,
    verify_tcp_checksum,
)
from repro.netstack.flow import (
    CompletionReason,
    Connection,
    ConnectionAssembler,
    FlowKey,
    FlowTable,
    ShardedFlowTable,
    assemble_connections,
    connection_looks_closed,
    flow_key_of,
    packet_stream,
    split_connections,
)
from repro.netstack.ip import Ipv4Header
from repro.netstack.options import (
    EndOfOptions,
    MaximumSegmentSize,
    Md5Signature,
    NoOperation,
    OptionKind,
    RawOption,
    SackPermitted,
    Timestamp,
    UserTimeout,
    WindowScale,
    decode_options,
    encode_options,
    find_option,
)
from repro.netstack.packet import Direction, Packet
from repro.netstack.pcap import (
    PcapReader,
    PcapRecord,
    PcapWriter,
    read_packet_columns,
    read_pcap,
    write_pcap,
)
from repro.netstack.tcp import TcpFlags, TcpHeader

__all__ = [
    "ColumnPacketView",
    "CompletionReason",
    "Connection",
    "ConnectionAssembler",
    "Direction",
    "FlowTable",
    "EndOfOptions",
    "FlowKey",
    "Ipv4Header",
    "MaximumSegmentSize",
    "Md5Signature",
    "NoOperation",
    "OptionKind",
    "Packet",
    "PacketColumns",
    "PcapReader",
    "PcapRecord",
    "PcapWriter",
    "RawOption",
    "SackPermitted",
    "ShardedFlowTable",
    "TcpFlags",
    "TcpHeader",
    "Timestamp",
    "UserTimeout",
    "WindowScale",
    "assemble_connections",
    "columns_of_train",
    "connection_looks_closed",
    "decode_options",
    "encode_options",
    "find_option",
    "flow_key_of",
    "int_to_ip",
    "internet_checksum",
    "ip_to_int",
    "is_private",
    "ones_complement_sum",
    "packet_stream",
    "parse_packet_columns",
    "pseudo_header",
    "read_packet_columns",
    "read_pcap",
    "split_connections",
    "tcp_checksum",
    "verify_checksum",
    "verify_tcp_checksum",
    "write_pcap",
]
