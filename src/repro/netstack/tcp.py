"""TCP header model.

As with :class:`repro.netstack.ip.Ipv4Header`, derived fields (data offset and
checksum) accept ``None`` meaning "compute the correct value"; explicit values
are serialised verbatim so that evasion strategies can emit deliberately
inconsistent segments.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.netstack import options as tcpopts
from repro.netstack.checksum import tcp_checksum

TCP_BASE_HEADER_LENGTH = 20


class TcpFlags:
    """Bit masks for the TCP flag byte plus the NS bit (RFC 3540)."""

    FIN = 0x001
    SYN = 0x002
    RST = 0x004
    PSH = 0x008
    ACK = 0x010
    URG = 0x020
    ECE = 0x040
    CWR = 0x080
    NS = 0x100

    ORDER = ("FIN", "SYN", "RST", "PSH", "ACK", "URG", "ECE", "CWR", "NS")

    @classmethod
    def names(cls, flags: int) -> list[str]:
        """Return the names of the flags set in ``flags``, in canonical order."""
        return [name for name in cls.ORDER if flags & getattr(cls, name)]

    @classmethod
    def from_names(cls, *names: str) -> int:
        """Build a flag mask from flag names, e.g. ``from_names("SYN", "ACK")``."""
        value = 0
        for name in names:
            value |= getattr(cls, name.upper())
        return value


@dataclass
class TcpHeader:
    """A structured TCP header with a list of decoded options."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 65535
    urgent_pointer: int = 0
    data_offset: int | None = None
    checksum: int | None = None
    options: list[object] = field(default_factory=list)
    # When an attack garbles the checksum we record the intent here as well, so
    # that validity can be assessed without re-serialising in contexts where the
    # surrounding IP addresses are unknown.
    checksum_valid_hint: bool | None = None

    # ----------------------------------------------------------------- flags
    def has_flag(self, mask: int) -> bool:
        return bool(self.flags & mask)

    @property
    def is_syn(self) -> bool:
        return self.has_flag(TcpFlags.SYN)

    @property
    def is_ack(self) -> bool:
        return self.has_flag(TcpFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return self.has_flag(TcpFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return self.has_flag(TcpFlags.RST)

    @property
    def flag_names(self) -> list[str]:
        return TcpFlags.names(self.flags)

    # ----------------------------------------------------------------- sizes
    @property
    def header_length(self) -> int:
        """Actual header length in bytes (base header plus padded options)."""
        return TCP_BASE_HEADER_LENGTH + len(tcpopts.encode_options(self.options))

    def effective_data_offset(self) -> int:
        """The data-offset value (in 32-bit words) that will hit the wire."""
        if self.data_offset is not None:
            return self.data_offset
        return self.header_length // 4

    # --------------------------------------------------------------- options
    def option(self, kind: int) -> object | None:
        """Return the first option of ``kind`` or ``None``."""
        return tcpopts.find_option(self.options, kind)

    def timestamp_option(self) -> tcpopts.Timestamp | None:
        return self.option(tcpopts.OptionKind.TIMESTAMP)

    def mss_option(self) -> tcpopts.MaximumSegmentSize | None:
        return self.option(tcpopts.OptionKind.MSS)

    def window_scale_option(self) -> tcpopts.WindowScale | None:
        return self.option(tcpopts.OptionKind.WINDOW_SCALE)

    def md5_option(self) -> tcpopts.Md5Signature | None:
        return self.option(tcpopts.OptionKind.MD5_SIGNATURE)

    def user_timeout_option(self) -> tcpopts.UserTimeout | None:
        return self.option(tcpopts.OptionKind.USER_TIMEOUT)

    def replace_option(self, new_option: object) -> None:
        """Replace (or append) the option with the same kind as ``new_option``."""
        kind = getattr(new_option, "kind")
        for index, existing in enumerate(self.options):
            if getattr(existing, "kind", None) == kind:
                self.options[index] = new_option
                return
        self.options.append(new_option)

    def copy(self, **overrides) -> "TcpHeader":
        """Return a deep-enough copy (options list is copied) with overrides."""
        clone = replace(self, options=list(self.options))
        for key, value in overrides.items():
            setattr(clone, key, value)
        return clone

    # ------------------------------------------------------------ wire format
    def to_bytes(self, src_ip: int = 0, dst_ip: int = 0, payload: bytes = b"") -> bytes:
        """Serialise the header (plus checksum over ``payload``).

        ``src_ip`` / ``dst_ip`` feed the pseudo-header; they are only needed
        when the checksum must be computed (``checksum is None``).
        """
        encoded_options = tcpopts.encode_options(self.options)
        offset_reserved_flags = (
            ((self.effective_data_offset() & 0xF) << 12)
            | ((1 if self.flags & TcpFlags.NS else 0) << 8)
            | (self.flags & 0xFF)
        )
        checksum = self.checksum if self.checksum is not None else 0
        header = struct.pack(
            "!HHIIHHHH",
            self.src_port & 0xFFFF,
            self.dst_port & 0xFFFF,
            self.seq & 0xFFFFFFFF,
            self.ack & 0xFFFFFFFF,
            offset_reserved_flags,
            self.window & 0xFFFF,
            checksum & 0xFFFF,
            self.urgent_pointer & 0xFFFF,
        )
        header += encoded_options
        if self.checksum is None:
            computed = tcp_checksum(src_ip, dst_ip, header + payload)
            header = header[:16] + struct.pack("!H", computed) + header[18:]
        return header

    @classmethod
    def from_bytes(cls, data: bytes) -> "TcpHeader":
        """Parse a TCP header from the start of ``data``."""
        if len(data) < TCP_BASE_HEADER_LENGTH:
            raise ValueError(f"truncated TCP header: {len(data)} bytes")
        (
            src_port,
            dst_port,
            seq,
            ack,
            offset_reserved_flags,
            window,
            checksum,
            urgent_pointer,
        ) = struct.unpack("!HHIIHHHH", data[:TCP_BASE_HEADER_LENGTH])
        data_offset = (offset_reserved_flags >> 12) & 0xF
        flags = offset_reserved_flags & 0xFF
        if offset_reserved_flags & 0x100:
            flags |= TcpFlags.NS
        claimed_header_length = data_offset * 4
        options_bytes = b""
        if claimed_header_length > TCP_BASE_HEADER_LENGTH and len(data) >= claimed_header_length:
            options_bytes = data[TCP_BASE_HEADER_LENGTH:claimed_header_length]
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            urgent_pointer=urgent_pointer,
            data_offset=data_offset,
            checksum=checksum,
            options=tcpopts.decode_options(options_bytes),
        )

    # ---------------------------------------------------------------- validity
    def has_correct_checksum(self, src_ip: int, dst_ip: int, payload: bytes = b"") -> bool:
        """Return ``True`` if the stored checksum verifies for this segment."""
        if self.checksum_valid_hint is not None:
            return self.checksum_valid_hint
        if self.checksum is None:
            return True
        auto = self.copy(checksum=None).to_bytes(src_ip, dst_ip, payload)
        correct = struct.unpack("!H", auto[16:18])[0]
        return (self.checksum & 0xFFFF) == correct
