"""Internet checksum (RFC 1071) used by both the IPv4 and TCP headers.

TCP additionally covers a pseudo-header built from the IP source/destination
addresses, the protocol number and the TCP segment length; helpers for both
are provided here so the header classes stay free of checksum arithmetic.
"""

from __future__ import annotations

import struct

TCP_PROTOCOL_NUMBER = 6


def ones_complement_sum(data: bytes) -> int:
    """Return the 16-bit one's-complement sum of ``data``.

    Data of odd length is padded with a trailing zero byte, as required by
    RFC 1071.
    """
    if len(data) % 2 == 1:
        data = data + b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return total & 0xFFFF


def internet_checksum(data: bytes) -> int:
    """Return the RFC 1071 internet checksum of ``data`` as a 16-bit integer."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return ``True`` if ``data`` (checksum field included) sums to zero."""
    return internet_checksum(data) == 0


def pseudo_header(src_ip: int, dst_ip: int, protocol: int, segment_length: int) -> bytes:
    """Build the 12-byte IPv4 pseudo-header used for TCP/UDP checksums."""
    return struct.pack("!IIBBH", src_ip & 0xFFFFFFFF, dst_ip & 0xFFFFFFFF, 0, protocol & 0xFF, segment_length & 0xFFFF)


def tcp_checksum(src_ip: int, dst_ip: int, segment: bytes) -> int:
    """Compute the TCP checksum for ``segment`` (header + payload).

    The checksum field inside ``segment`` must already be zeroed by the caller;
    :func:`verify_tcp_checksum` is the counterpart used on received segments.
    """
    pseudo = pseudo_header(src_ip, dst_ip, TCP_PROTOCOL_NUMBER, len(segment))
    return internet_checksum(pseudo + segment)


def verify_tcp_checksum(src_ip: int, dst_ip: int, segment: bytes) -> bool:
    """Return ``True`` if a received TCP ``segment`` carries a valid checksum."""
    pseudo = pseudo_header(src_ip, dst_ip, TCP_PROTOCOL_NUMBER, len(segment))
    return internet_checksum(pseudo + segment) == 0
