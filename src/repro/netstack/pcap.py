"""Minimal libpcap (``.pcap``) reader and writer.

Captures are written with link type ``LINKTYPE_RAW`` (101), i.e. each record
is a bare IPv4 packet, which is all this library produces.  The reader also
accepts Ethernet (``LINKTYPE_ETHERNET``, 1) and Linux cooked capture
(``LINKTYPE_LINUX_SLL``, 113) files and strips the link-layer header, so real
captures such as the MAWI traces can be ingested directly.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Union

from repro.netstack.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_LINUX_SLL = 113

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One raw record from a capture file."""

    timestamp: float
    data: bytes


class PcapWriter:
    """Write IPv4 packets to a classic pcap file (LINKTYPE_RAW)."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._file = open(self._path, "wb")
        header = _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, LINKTYPE_RAW)
        self._file.write(header)

    def write_packet(self, packet: Packet) -> None:
        """Serialise ``packet`` and append it as a record."""
        self.write_raw(packet.to_bytes(), packet.timestamp)

    def write_raw(self, data: bytes, timestamp: float) -> None:
        """Append pre-serialised packet bytes with the given timestamp."""
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        record = _RECORD_HEADER.pack(seconds, microseconds, len(data), len(data))
        self._file.write(record)
        self._file.write(data)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Iterate records (and optionally parsed packets) from a pcap file."""

    def __init__(self, path: Union[str, Path]) -> None:
        self._path = Path(path)
        self._file = open(self._path, "rb")
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"not a pcap file (truncated global header): {path}")
        magic = struct.unpack("=I", header[:4])[0]
        if magic == PCAP_MAGIC:
            self._byteorder = "="
        elif magic == PCAP_MAGIC_SWAPPED:
            # The file was written with the opposite byte order to this host.
            native_is_little = struct.pack("=H", 1)[0] == 1
            self._byteorder = ">" if native_is_little else "<"
        else:
            raise ValueError(f"not a pcap file (bad magic 0x{magic:08x}): {path}")
        fields = struct.unpack(self._byteorder + "IHHiIII", header)
        self.link_type = fields[6]

    # -------------------------------------------------------------- iteration
    def records(self) -> Iterator[PcapRecord]:
        """Yield raw records, stripping any link-layer framing."""
        record_struct = struct.Struct(self._byteorder + "IIII")
        while True:
            header = self._file.read(record_struct.size)
            if len(header) < record_struct.size:
                return
            seconds, microseconds, captured_length, _original_length = record_struct.unpack(header)
            data = self._file.read(captured_length)
            if len(data) < captured_length:
                return
            payload = self._strip_link_layer(data)
            if payload is None:
                continue
            yield PcapRecord(timestamp=seconds + microseconds / 1_000_000, data=payload)

    def packets(self, strict: bool = False) -> Iterator[Packet]:
        """Yield parsed TCP/IPv4 packets; non-TCP records are skipped.

        With ``strict=True`` a malformed record raises instead of being
        skipped.
        """
        for record in self.records():
            try:
                yield Packet.from_bytes(record.data, timestamp=record.timestamp)
            except ValueError:
                if strict:
                    raise

    def _strip_link_layer(self, data: bytes) -> Union[bytes, None]:
        if self.link_type == LINKTYPE_RAW:
            return data
        if self.link_type == LINKTYPE_ETHERNET:
            if len(data) < 14:
                return None
            ethertype = struct.unpack("!H", data[12:14])[0]
            if ethertype != 0x0800:
                return None
            return data[14:]
        if self.link_type == LINKTYPE_LINUX_SLL:
            if len(data) < 16:
                return None
            protocol = struct.unpack("!H", data[14:16])[0]
            if protocol != 0x0800:
                return None
            return data[16:]
        return data

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def write_pcap(path: Union[str, Path], packets: Iterable[Packet]) -> int:
    """Write ``packets`` to ``path``; returns the number of records written."""
    count = 0
    with PcapWriter(path) as writer:
        for packet in packets:
            writer.write_packet(packet)
            count += 1
    return count


def read_pcap(path: Union[str, Path]) -> List[Packet]:
    """Read all TCP/IPv4 packets from ``path`` into a list."""
    with PcapReader(path) as reader:
        return list(reader.packets())
