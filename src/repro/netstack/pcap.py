"""Minimal libpcap (``.pcap``) reader and writer.

Captures are written with link type ``LINKTYPE_RAW`` (101), i.e. each record
is a bare IPv4 packet, which is all this library produces.  The reader also
accepts Ethernet (``LINKTYPE_ETHERNET``, 1) and Linux cooked capture
(``LINKTYPE_LINUX_SLL``, 113) files and strips the link-layer header, so real
captures such as the MAWI traces can be ingested directly.  Records of any
other link type raise :class:`ValueError`.

Two read paths are offered:

* :meth:`PcapReader.records` / :meth:`PcapReader.packets` — the classic
  one-object-per-record iterator, kept as the reference implementation;
* :meth:`PcapReader.read_columns` / :meth:`PcapReader.iter_column_blocks` —
  the columnar fast path: the file is read in large blocks, record headers
  are sliced out of the block buffer (one ``read`` per block instead of two
  per record) and the records are handed to
  :func:`repro.netstack.columns.parse_packet_columns` for vectorized
  TCP/IPv4 parsing.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterable, Iterator

import numpy as np

from repro.netstack.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1
LINKTYPE_RAW = 101
LINKTYPE_LINUX_SLL = 113

_GLOBAL_HEADER = struct.Struct("IHHiIII")
_RECORD_HEADER = struct.Struct("IIII")


@dataclass(frozen=True)
class PcapRecord:
    """One raw record from a capture file."""

    timestamp: float
    data: bytes


class PcapWriter:
    """Write IPv4 packets to a classic pcap file (LINKTYPE_RAW)."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._file = open(self._path, "wb")
        header = _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, LINKTYPE_RAW)
        self._file.write(header)

    def write_packet(self, packet: Packet) -> None:
        """Serialise ``packet`` and append it as a record."""
        self.write_raw(packet.to_bytes(), packet.timestamp)

    def write_raw(self, data: bytes, timestamp: float) -> None:
        """Append pre-serialised packet bytes with the given timestamp."""
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        record = _RECORD_HEADER.pack(seconds, microseconds, len(data), len(data))
        self._file.write(record)
        self._file.write(data)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PcapReader:
    """Iterate records (and optionally parsed packets) from a pcap file."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._file = open(self._path, "rb")
        header = self._file.read(_GLOBAL_HEADER.size)
        if len(header) < _GLOBAL_HEADER.size:
            raise ValueError(f"not a pcap file (truncated global header): {path}")
        magic = struct.unpack("=I", header[:4])[0]
        if magic == PCAP_MAGIC:
            self._byteorder = "="
        elif magic == PCAP_MAGIC_SWAPPED:
            # The file was written with the opposite byte order to this host.
            native_is_little = struct.pack("=H", 1)[0] == 1
            self._byteorder = ">" if native_is_little else "<"
        else:
            raise ValueError(f"not a pcap file (bad magic 0x{magic:08x}): {path}")
        fields = struct.unpack(self._byteorder + "IHHiIII", header)
        self.link_type = fields[6]

    # -------------------------------------------------------------- iteration
    def records(self) -> Iterator[PcapRecord]:
        """Yield raw records, stripping any link-layer framing."""
        record_struct = struct.Struct(self._byteorder + "IIII")
        while True:
            header = self._file.read(record_struct.size)
            if len(header) < record_struct.size:
                return
            seconds, microseconds, captured_length, _original_length = record_struct.unpack(header)
            data = self._file.read(captured_length)
            if len(data) < captured_length:
                return
            payload = self._strip_link_layer(data)
            if payload is None:
                continue
            yield PcapRecord(timestamp=seconds + microseconds / 1_000_000, data=payload)

    def packets(self, strict: bool = False) -> Iterator[Packet]:
        """Yield parsed TCP/IPv4 packets; non-TCP records are skipped.

        With ``strict=True`` a malformed record raises instead of being
        skipped.
        """
        for record in self.records():
            try:
                yield Packet.from_bytes(record.data, timestamp=record.timestamp)
            except ValueError:
                if strict:
                    raise

    def _strip_link_layer(self, data: bytes) -> bytes | None:
        if self.link_type == LINKTYPE_RAW:
            return data
        if self.link_type == LINKTYPE_ETHERNET:
            if len(data) < 14:
                return None
            ethertype = struct.unpack("!H", data[12:14])[0]
            if ethertype != 0x0800:
                return None
            return data[14:]
        if self.link_type == LINKTYPE_LINUX_SLL:
            if len(data) < 16:
                return None
            protocol = struct.unpack("!H", data[14:16])[0]
            if protocol != 0x0800:
                return None
            return data[16:]
        raise self._unsupported_link_type()

    def _unsupported_link_type(self) -> ValueError:
        """The shared unknown-link-type error (object and columnar paths)."""
        return ValueError(
            f"unsupported pcap link type {self.link_type} in {self._path}"
            " (expected LINKTYPE_RAW, LINKTYPE_ETHERNET or LINKTYPE_LINUX_SLL)"
        )

    # ------------------------------------------------------------ columnar path
    @property
    def _little_endian(self) -> bool:
        if self._byteorder == "=":
            return struct.pack("=H", 1)[0] == 1
        return self._byteorder == "<"

    def _scan_blocks(
        self, block_bytes: int
    ) -> Iterator[tuple[bytes, list[int], list[int]]]:
        """Carve whole records out of large file blocks.

        Yields ``(buffer, data_starts, captured_lengths)`` per block, where
        ``data_starts`` point just past each 16-byte record header.  This is
        the bulk replacement for the two ``read()`` calls per record that
        :meth:`records` makes; a record straddling a block boundary is carried
        over into the next block, and a truncated trailing record is dropped,
        exactly as the iterator path does.
        """
        endian = "little" if self._little_endian else "big"
        # Bytes still unread in the file: a record claiming more than this is
        # truncated (or has a corrupt length) and is dropped like the object
        # path drops it — without first buffering the whole remaining file.
        here = self._file.tell()
        file_remaining = max(os.fstat(self._file.fileno()).st_size - here, 0)
        read_size = block_bytes
        carry = b""
        while True:
            # A non-positive block size means "read to EOF" (whole-file mode).
            chunk = self._file.read(read_size if read_size > 0 else -1)
            file_remaining -= len(chunk)
            buffer = carry + chunk if carry else chunk
            if not buffer:
                return
            starts: list[int] = []
            caplens: list[int] = []
            position = 0
            end = len(buffer)
            while position + _RECORD_HEADER.size <= end:
                captured = int.from_bytes(buffer[position + 8 : position + 12], endian)
                record_end = position + _RECORD_HEADER.size + captured
                if record_end > end:
                    if record_end - end > file_remaining:
                        # The rest of the file cannot complete this record:
                        # truncated/corrupt trailing record, drop it.
                        carry = b""
                        if starts:
                            yield buffer, starts, caplens
                        return
                    break
                starts.append(position + _RECORD_HEADER.size)
                caplens.append(captured)
                position = record_end
            carry = buffer[position:]
            if starts:
                read_size = block_bytes
                yield buffer, starts, caplens
            elif chunk:
                # A single record larger than the block: grow the next read
                # geometrically so the carry+chunk recopy stays linear.
                read_size = max(read_size, len(carry)) * 2
            if not chunk:
                return

    def _block_columns(
        self, buffer: bytes, starts: list[int], caplens: list[int], strict: bool
    ):
        """Vectorized record-header parse + link-layer strip for one block."""
        from repro.netstack.columns import parse_packet_columns

        data = np.frombuffer(buffer, dtype=np.uint8)
        offsets = np.asarray(starts, dtype=np.int64)
        lengths = np.asarray(caplens, dtype=np.int64)
        # Record headers sit 16 bytes before each data start; seconds and
        # microseconds are the first two little/big-endian u32 fields.
        header_at = (offsets - _RECORD_HEADER.size)[:, None] + np.arange(8)
        words = np.ascontiguousarray(data[header_at]).view(
            "<u4" if self._little_endian else ">u4"
        )
        timestamps = words[:, 0].astype(np.float64) + words[:, 1].astype(np.float64) / 1e6
        if self.link_type == LINKTYPE_RAW:
            keep = np.ones(offsets.shape[0], dtype=bool)
            skip = 0
        elif self.link_type in (LINKTYPE_ETHERNET, LINKTYPE_LINUX_SLL):
            skip = 14 if self.link_type == LINKTYPE_ETHERNET else 16
            type_at = skip - 2
            keep = lengths >= skip
            ethertype = np.zeros(offsets.shape[0], dtype=np.int64)
            safe = np.where(keep, offsets + type_at, 0)
            ethertype[keep] = (
                data[safe[keep]].astype(np.int64) << 8
            ) | data[safe[keep] + 1]
            keep &= ethertype == 0x0800
        else:
            raise self._unsupported_link_type()
        return parse_packet_columns(
            data,
            offsets[keep] + skip,
            lengths[keep] - skip,
            timestamps[keep],
            strict=strict,
        )

    def iter_column_blocks(
        self, *, block_bytes: int = 4 << 20, strict: bool = False
    ):
        """Yield :class:`~repro.netstack.columns.PacketColumns` per file block.

        Bounded memory: only ``block_bytes`` of capture (plus its columns) is
        alive at a time, so arbitrarily large captures stream through the
        columnar path.  Non-TCP/malformed records are dropped unless
        ``strict=True`` (mirroring :meth:`packets`).
        """
        for buffer, starts, caplens in self._scan_blocks(block_bytes):
            columns = self._block_columns(buffer, starts, caplens, strict)
            if len(columns):
                yield columns

    def read_columns(self, *, strict: bool = False):
        """Parse the whole remaining capture into one
        :class:`~repro.netstack.columns.PacketColumns` (the bulk counterpart
        of :func:`read_pcap`)."""
        from repro.netstack.columns import PacketColumns

        blocks = list(self.iter_column_blocks(block_bytes=-1, strict=strict))
        if not blocks:
            return PacketColumns.empty()
        if len(blocks) == 1:
            return blocks[0]
        return PacketColumns.concatenate(blocks)

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "PcapReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_packet_columns(path: str | Path, *, strict: bool = False):
    """Read all TCP/IPv4 packets from ``path`` as one
    :class:`~repro.netstack.columns.PacketColumns` (columnar ``read_pcap``)."""
    with PcapReader(path) as reader:
        return reader.read_columns(strict=strict)


def write_pcap(path: str | Path, packets: Iterable[Packet]) -> int:
    """Write ``packets`` to ``path``; returns the number of records written."""
    count = 0
    with PcapWriter(path) as writer:
        for packet in packets:
            writer.write_packet(packet)
            count += 1
    return count


def read_pcap(path: str | Path) -> list[Packet]:
    """Read all TCP/IPv4 packets from ``path`` into a list."""
    with PcapReader(path) as reader:
        return list(reader.packets())
