"""IPv4 header model.

The header is a mutable dataclass so attack strategies can overwrite individual
fields (an invalid version, a wrong total length, a zeroed TTL, a garbled
checksum) before the packet is re-serialised or fed to feature extraction.
Fields that are normally derived (header length, total length, checksum) accept
``None`` to mean "compute the correct value for me"; an explicit integer is
always honoured verbatim, even if it is wrong — that is precisely what the
evasion strategies rely on.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field, replace

from repro.netstack.addresses import int_to_ip, ip_to_int
from repro.netstack.checksum import internet_checksum

IPV4_BASE_HEADER_LENGTH = 20
IP_PROTOCOL_TCP = 6


@dataclass
class Ipv4Header:
    """A structured IPv4 header.

    Attributes mirror RFC 791 field names.  ``src`` / ``dst`` are 32-bit
    integers (see :mod:`repro.netstack.addresses`).  ``ihl``, ``total_length``
    and ``checksum`` may be ``None``, meaning they are derived at serialisation
    time from the actual header/payload sizes.
    """

    src: int
    dst: int
    version: int = 4
    ihl: int | None = None
    tos: int = 0
    total_length: int | None = None
    identification: int = 0
    dont_fragment: bool = True
    more_fragments: bool = False
    fragment_offset: int = 0
    ttl: int = 64
    protocol: int = IP_PROTOCOL_TCP
    checksum: int | None = None
    options: bytes = b""

    # ------------------------------------------------------------------ sizes
    @property
    def header_length(self) -> int:
        """Actual header length in bytes (base header plus padded options)."""
        options = self.options
        padding = (4 - len(options) % 4) % 4
        return IPV4_BASE_HEADER_LENGTH + len(options) + padding

    def effective_ihl(self) -> int:
        """The IHL value that will appear on the wire (in 32-bit words)."""
        if self.ihl is not None:
            return self.ihl
        return self.header_length // 4

    def effective_total_length(self, payload_length: int) -> int:
        """The total-length value that will appear on the wire."""
        if self.total_length is not None:
            return self.total_length
        return self.header_length + payload_length

    # ------------------------------------------------------------ conversions
    @property
    def src_address(self) -> str:
        return int_to_ip(self.src)

    @property
    def dst_address(self) -> str:
        return int_to_ip(self.dst)

    @classmethod
    def for_addresses(cls, src: str, dst: str, **kwargs) -> "Ipv4Header":
        """Build a header from dotted-quad source/destination strings."""
        return cls(src=ip_to_int(src), dst=ip_to_int(dst), **kwargs)

    def copy(self, **overrides) -> "Ipv4Header":
        """Return a field-for-field copy, optionally overriding attributes."""
        return replace(self, **overrides)

    # ------------------------------------------------------------- wire format
    def to_bytes(self, payload_length: int = 0) -> bytes:
        """Serialise the header for a payload of ``payload_length`` bytes.

        When ``checksum`` is ``None`` the correct checksum is computed over the
        serialised header; otherwise the stored (possibly bogus) value is
        emitted untouched.
        """
        options = self.options
        padding = (4 - len(options) % 4) % 4
        options = options + b"\x00" * padding

        version_ihl = ((self.version & 0xF) << 4) | (self.effective_ihl() & 0xF)
        flags = (int(self.dont_fragment) << 1) | int(self.more_fragments)
        flags_fragment = ((flags & 0x7) << 13) | (self.fragment_offset & 0x1FFF)
        checksum = self.checksum if self.checksum is not None else 0
        header = struct.pack(
            "!BBHHHBBHII",
            version_ihl,
            self.tos & 0xFF,
            self.effective_total_length(payload_length) & 0xFFFF,
            self.identification & 0xFFFF,
            flags_fragment,
            self.ttl & 0xFF,
            self.protocol & 0xFF,
            checksum & 0xFFFF,
            self.src & 0xFFFFFFFF,
            self.dst & 0xFFFFFFFF,
        )
        header += options
        if self.checksum is None:
            computed = internet_checksum(header)
            header = header[:10] + struct.pack("!H", computed) + header[12:]
        return header

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv4Header":
        """Parse an IPv4 header from the start of ``data``.

        The parsed object stores the on-wire IHL / total length / checksum
        explicitly, so re-serialising it reproduces the original bytes even if
        they were inconsistent.
        """
        if len(data) < IPV4_BASE_HEADER_LENGTH:
            raise ValueError(f"truncated IPv4 header: {len(data)} bytes")
        (
            version_ihl,
            tos,
            total_length,
            identification,
            flags_fragment,
            ttl,
            protocol,
            checksum,
            src,
            dst,
        ) = struct.unpack("!BBHHHBBHII", data[:IPV4_BASE_HEADER_LENGTH])
        version = version_ihl >> 4
        ihl = version_ihl & 0xF
        claimed_header_length = ihl * 4
        options = b""
        if claimed_header_length > IPV4_BASE_HEADER_LENGTH and len(data) >= claimed_header_length:
            options = data[IPV4_BASE_HEADER_LENGTH:claimed_header_length]
        flags = (flags_fragment >> 13) & 0x7
        return cls(
            src=src,
            dst=dst,
            version=version,
            ihl=ihl,
            tos=tos,
            total_length=total_length,
            identification=identification,
            dont_fragment=bool(flags & 0x2),
            more_fragments=bool(flags & 0x1),
            fragment_offset=flags_fragment & 0x1FFF,
            ttl=ttl,
            protocol=protocol,
            checksum=checksum,
            options=options,
        )

    # ---------------------------------------------------------------- validity
    def has_correct_checksum(self, payload_length: int = 0) -> bool:
        """Return ``True`` if the stored checksum matches the header contents.

        A header with ``checksum=None`` is valid by construction (the correct
        value is filled in during serialisation).
        """
        if self.checksum is None:
            return True
        auto = self.copy(checksum=None).to_bytes(payload_length)
        correct = struct.unpack("!H", auto[10:12])[0]
        return (self.checksum & 0xFFFF) == correct
