"""IPv4 address helpers.

Addresses are carried through the library as plain 32-bit integers (the form
in which they appear on the wire and in flow keys); these helpers convert to
and from dotted-quad strings for display, traffic generation and tests.
"""

from __future__ import annotations


def ip_to_int(address: str) -> int:
    """Convert a dotted-quad string (``"10.0.0.1"``) to a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"invalid IPv4 octet {part!r} in {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to a dotted-quad string."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_private(value: int) -> bool:
    """Return ``True`` for RFC 1918 private addresses (given as integers)."""
    first = (value >> 24) & 0xFF
    second = (value >> 16) & 0xFF
    if first == 10:
        return True
    if first == 172 and 16 <= second <= 31:
        return True
    if first == 192 and second == 168:
        return True
    return False
