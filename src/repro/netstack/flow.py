"""Flow keys and connection assembly.

The CLAP pipeline is connection-oriented: detection scores, localisation and
labelling all operate on one TCP connection at a time.  This module groups a
stream of packets (e.g. read from a capture) into :class:`Connection` objects
keyed by the canonical 5-tuple, and assigns each packet its logical direction
relative to the connection originator.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Iterable, Iterator

from repro.netstack.addresses import int_to_ip
from repro.netstack.columns import ColumnPacketView
from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TcpFlags

_CLOSING_FLAGS = TcpFlags.FIN | TcpFlags.RST


@dataclass(frozen=True)
class FlowKey:
    """Canonical bidirectional 5-tuple (protocol fixed to TCP).

    The key is normalised so that both directions of the same connection map
    to the same value: the (address, port) pair that sorts lower is stored
    first.

    The hash is computed once at construction and cached: the flow table
    probes a dict with the key once per packet, and the dataclass-generated
    ``__hash__`` would rebuild and hash the 4-tuple on every probe
    (``benchmarks/results/flowkey_hash_microbench.txt``).
    """

    ip_a: int
    port_a: int
    ip_b: int
    port_b: int

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.ip_a, self.port_a, self.ip_b, self.port_b))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        src = (packet.ip.src, packet.tcp.src_port)
        dst = (packet.ip.dst, packet.tcp.dst_port)
        first, second = (src, dst) if src <= dst else (dst, src)
        return cls(ip_a=first[0], port_a=first[1], ip_b=second[0], port_b=second[1])

    def __str__(self) -> str:
        return (
            f"{int_to_ip(self.ip_a)}:{self.port_a} <-> "
            f"{int_to_ip(self.ip_b)}:{self.port_b}"
        )


def flow_key_of(packet) -> FlowKey:
    """The :class:`FlowKey` of ``packet``, via its precomputed key if any.

    :class:`~repro.netstack.columns.ColumnPacketView` rows normalise their
    key vectorized (and deduplicated) at parse time; plain packets fall back
    to :meth:`FlowKey.from_packet`.
    """
    if type(packet) is ColumnPacketView:
        key = packet._key
        return key if key is not None else packet.flow_key()
    fast = getattr(packet, "flow_key", None)
    if fast is not None:
        return fast()
    return FlowKey.from_packet(packet)


@dataclass
class Connection:
    """An ordered train of packets belonging to one TCP connection."""

    key: FlowKey
    packets: list[Packet] = field(default_factory=list)
    # The connection originator (client); set from the first packet seen.
    client_ip: int | None = None
    client_port: int | None = None

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def append(self, packet: Packet) -> None:
        """Append ``packet``, assigning its direction relative to the client."""
        if type(packet) is ColumnPacketView:
            src, src_port = packet.src, packet.src_port  # direct slot reads
        else:
            src, src_port = packet.ip.src, packet.tcp.src_port
        if self.client_ip is None:
            self.client_ip = src
            self.client_port = src_port
        if src == self.client_ip and src_port == self.client_port:
            packet.direction = Direction.CLIENT_TO_SERVER
        else:
            packet.direction = Direction.SERVER_TO_CLIENT
        self.packets.append(packet)

    @property
    def duration(self) -> float:
        """Seconds between the first and last packet (0.0 for single packets)."""
        if len(self.packets) < 2:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    @property
    def has_handshake(self) -> bool:
        """True if the connection contains a SYN followed by a SYN-ACK."""
        saw_syn = False
        for packet in self.packets:
            if packet.tcp.is_syn and not packet.tcp.is_ack:
                saw_syn = True
            elif saw_syn and packet.tcp.is_syn and packet.tcp.is_ack:
                return True
        return False

    def client_packets(self) -> list[Packet]:
        return [p for p in self.packets if p.direction is Direction.CLIENT_TO_SERVER]

    def server_packets(self) -> list[Packet]:
        return [p for p in self.packets if p.direction is Direction.SERVER_TO_CLIENT]

    def injected_indices(self) -> list[int]:
        """Indices of packets flagged as injected/modified by an attack."""
        return [index for index, packet in enumerate(self.packets) if packet.injected]

    def copy(self) -> "Connection":
        """Deep-enough copy: packets (and their headers) are duplicated."""
        clone = Connection(key=self.key, client_ip=self.client_ip, client_port=self.client_port)
        clone.packets = [packet.copy() for packet in self.packets]
        return clone

    def sort_by_time(self) -> None:
        """Stable-sort packets by capture timestamp."""
        self.packets.sort(key=lambda packet: packet.timestamp)


def connection_looks_closed(connection: Connection) -> bool:
    """Heuristic shared by the assembler and the flow table: a connection
    looks closed once a FIN or RST appears in its last three packets."""
    if not connection.packets:
        return False
    tail = connection.packets[-3:]
    return any(p.tcp.is_rst or p.tcp.is_fin for p in tail)


class ConnectionAssembler:
    """Group an arbitrary packet stream into connections.

    A new connection is opened for a flow key when either the key has not been
    seen before or the previous connection on that key was closed by RST/FIN
    exchange and the new packet is a fresh SYN.
    """

    def __init__(self) -> None:
        self._active: dict[FlowKey, Connection] = {}
        self._finished: list[Connection] = []

    def add(self, packet: Packet) -> Connection:
        """Route ``packet`` to its connection, creating one if needed."""
        key = flow_key_of(packet)
        connection = self._active.get(key)
        starts_new = packet.tcp.is_syn and not packet.tcp.is_ack
        if connection is None or (starts_new and self._looks_closed(connection)):
            if connection is not None:
                self._finished.append(connection)
            connection = Connection(key=key)
            self._active[key] = connection
        connection.append(packet)
        return connection

    def add_all(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.add(packet)

    _looks_closed = staticmethod(connection_looks_closed)

    def connections(self) -> list[Connection]:
        """All connections assembled so far, in order of first packet."""
        everything = self._finished + list(self._active.values())
        everything.sort(key=lambda conn: conn.packets[0].timestamp if conn.packets else 0.0)
        return everything


class CompletionReason(enum.Enum):
    """Why the flow table handed a connection back to the caller."""

    CLOSED = "closed"  # FIN/RST seen and the close grace period elapsed (or a new SYN arrived)
    IDLE = "idle"  # no packet for ``idle_timeout`` stream-seconds
    CAPACITY = "capacity"  # evicted by the ``max_flows``/``max_packets`` bounds
    DRAIN = "drain"  # explicitly drained (end of stream / shutdown)


@dataclass
class _FlowEntry:
    connection: Connection
    last_seen: float
    # Rolling FIN/RST bits of the last three appended packets — the
    # incremental equivalent of :func:`connection_looks_closed` (every packet
    # of a tracked connection arrives through :meth:`FlowTable.add`), so the
    # per-packet close check reads one int instead of rescanning the tail.
    tail_close_bits: int = 0


class FlowTable:
    """Incremental connection assembly for live packet streams.

    The batch :class:`ConnectionAssembler` holds every connection until the
    caller asks for all of them — fine for a capture file, unusable for an
    unbounded stream.  ``FlowTable`` ingests one packet at a time and *emits*
    connections as soon as they complete, under bounded memory:

    * **FIN/RST completion** — once a connection looks closed (FIN or RST in
      its last three packets, the same heuristic the assembler uses) it is
      emitted after ``close_grace`` stream-seconds of silence, or immediately
      when a fresh SYN reuses its 5-tuple.  The grace period keeps the
      trailing FIN/ACK exchange (and attack-injected RSTs that the endpoints
      ignore) attached to the connection, so grouping matches the offline
      assembler on time-ordered streams.  The effective grace is capped at
      ``idle_timeout`` (a closed connection never outlives an idle one), and
      such completions are always reported as ``CLOSED``, never ``IDLE``.
    * **Idle eviction** — connections silent for ``idle_timeout`` seconds are
      emitted as :attr:`CompletionReason.IDLE`.
    * **Size eviction** — the table never tracks more than ``max_flows``
      connections (least-recently-active evicted first) and force-completes
      any connection reaching ``max_packets`` packets.

    Time advances only through packet timestamps (and explicit :meth:`poll`
    calls), so replaying a capture is deterministic and independent of
    wall-clock speed.
    """

    def __init__(
        self,
        *,
        idle_timeout: float = 60.0,
        close_grace: float = 1.0,
        max_flows: int | None = None,
        max_packets: int | None = None,
    ) -> None:
        if idle_timeout <= 0:
            raise ValueError(f"idle_timeout must be positive, got {idle_timeout}")
        if close_grace < 0:
            raise ValueError(f"close_grace must be non-negative, got {close_grace}")
        if max_flows is not None and max_flows < 1:
            raise ValueError(f"max_flows must be at least 1, got {max_flows}")
        if max_packets is not None and max_packets < 1:
            raise ValueError(f"max_packets must be at least 1, got {max_packets}")
        self.idle_timeout = float(idle_timeout)
        self.close_grace = float(close_grace)
        self.max_flows = max_flows
        self.max_packets = max_packets
        # Ordered by recency of activity: the front is the LRU eviction victim.
        self._flows: "OrderedDict[FlowKey, _FlowEntry]" = OrderedDict()
        self._closing: dict[FlowKey, None] = {}  # insertion-ordered set
        self._clock = float("-inf")
        # The effective grace (a closed connection never outlives an idle one)
        # and the cached stream time at which the *current* closing front
        # expires.  Any mutation of ``_closing`` resets the cache to -inf
        # ("must rescan"), so skipping the scan while ``clock`` is before the
        # cached deadline reproduces the scan-every-packet behaviour exactly —
        # the front entry and its ``last_seen`` cannot have changed without a
        # mutation passing through :meth:`add`/:meth:`_remove`.
        self._grace = min(self.close_grace, self.idle_timeout)
        self._closing_due = float("-inf")
        self._idle_finite = self.idle_timeout != float("inf")

    def __len__(self) -> int:
        return len(self._flows)

    @property
    def clock(self) -> float:
        """The latest stream timestamp observed."""
        return self._clock

    # ------------------------------------------------------------- ingestion
    def add(
        self, packet: Packet, key: FlowKey | None = None
    ) -> list[tuple[Connection, CompletionReason]]:
        """Route ``packet`` and return every connection completed by it.

        Completions triggered by this packet include the connection it closed
        by reusing a 5-tuple, connections whose close-grace/idle timers
        expired as stream time advanced, and capacity evictions.  Callers
        that already computed the packet's :class:`FlowKey` (e.g. the sharded
        runtime's router) may pass it to skip recomputing it.
        """
        completed: list[tuple[Connection, CompletionReason]] = []
        if key is None:
            key = flow_key_of(packet)
        entry = self._flows.get(key)
        flags = packet.flags
        starts_new = (flags & TcpFlags.SYN) and not (flags & TcpFlags.ACK)
        if entry is not None and starts_new and entry.tail_close_bits:
            self._remove(key)
            completed.append((entry.connection, CompletionReason.CLOSED))
            entry = None
        if entry is None:
            entry = _FlowEntry(Connection(key=key), packet.timestamp)
            self._flows[key] = entry
        entry.connection.append(packet)
        entry.tail_close_bits = (
            (entry.tail_close_bits << 1) | (1 if flags & _CLOSING_FLAGS else 0)
        ) & 0b111
        if packet.timestamp > entry.last_seen:
            entry.last_seen = packet.timestamp
        self._flows.move_to_end(key)
        # ``_closing`` mirrors the recency ordering of ``_flows`` (pop +
        # reinsert moves an active key to the back), so the grace scan in
        # :meth:`poll` can stop at the first entry still inside its grace.
        closing = self._closing
        if key in closing:
            del closing[key]
            self._closing_due = float("-inf")
        if entry.tail_close_bits:
            closing[key] = None
            self._closing_due = float("-inf")
        if self.max_packets is not None and len(entry.connection) >= self.max_packets:
            self._remove(key)
            completed.append((entry.connection, CompletionReason.CAPACITY))
        timestamp = packet.timestamp
        if timestamp > self._clock:
            self._clock = timestamp
        # Timer scan only when a timer can actually fire: a close grace is
        # pending, or idle eviction is finite (poll() itself would conclude
        # the same, but the call and list churn are per-packet costs).
        if self._closing or self._idle_finite:
            completed.extend(self.poll())
        if self.max_flows is not None:
            while len(self._flows) > self.max_flows:
                victim_key = next(iter(self._flows))
                victim = self._remove(victim_key)
                completed.append((victim.connection, CompletionReason.CAPACITY))
        return completed

    def poll(self, now: float | None = None) -> list[tuple[Connection, CompletionReason]]:
        """Advance stream time to ``now`` and expire close-grace/idle timers."""
        if now is not None:
            self._clock = max(self._clock, float(now))
        now = self._clock
        completed: list[tuple[Connection, CompletionReason]] = []
        # Closed connections wait only for the (short) grace period.  The set
        # is ordered by last activity, so the scan stops at the first entry
        # whose grace has not elapsed — per-packet cost stays proportional to
        # the completions produced, even under a FIN/RST flood.  (Packets
        # arriving out of timestamp order can leave a stale ``last_seen``
        # behind the front entry; its completion is then merely deferred to
        # the poll that clears the front, never lost.)  The front's expiry is
        # cached between scans: while the set is untouched, re-checking it
        # every packet would just re-derive the same deadline.
        if self._closing and now >= self._closing_due:
            grace = self._grace
            while self._closing:
                key = next(iter(self._closing))
                entry = self._flows[key]
                if now - entry.last_seen < grace:
                    self._closing_due = entry.last_seen + grace
                    break
                self._remove(key)
                completed.append((entry.connection, CompletionReason.CLOSED))
        # The LRU front has the stalest activity, so the scan stops at the
        # first non-idle connection instead of touching the whole table (and
        # an infinite idle timeout skips it entirely).
        if self._idle_finite:
            while self._flows:
                key, entry = next(iter(self._flows.items()))
                if now - entry.last_seen < self.idle_timeout:
                    break
                self._remove(key)
                completed.append((entry.connection, CompletionReason.IDLE))
        return completed

    def drain(self) -> list[tuple[Connection, CompletionReason]]:
        """Complete every tracked connection (end of stream), oldest first."""
        entries = sorted(
            self._flows.values(),
            key=lambda entry: entry.connection.packets[0].timestamp
            if entry.connection.packets
            else 0.0,
        )
        self._flows.clear()
        self._closing.clear()
        return [(entry.connection, CompletionReason.DRAIN) for entry in entries]

    def _remove(self, key: FlowKey) -> _FlowEntry:
        if key in self._closing:
            del self._closing[key]
            self._closing_due = float("-inf")
        return self._flows.pop(key)


class ShardedFlowTable:
    """Hash-partitioned flow assembly: N independent :class:`FlowTable` shards.

    Per-flow independence makes connection assembly horizontally
    partitionable: every packet of a flow maps to the same shard
    (``hash(FlowKey) % shards``), so shards never share state and each can be
    owned by a different worker (:mod:`repro.serve.runtime` does exactly
    that).  Each shard keeps its own clock, advanced by its own packets; the
    wrapper tracks the global stream high-water mark and lazily catches a
    shard up to it before routing a packet into it, so close-grace/idle
    expiry fires against global stream time exactly as it would in a single
    table.  The emitted *set* of connections on a time-ordered stream is
    therefore identical to a single :class:`FlowTable`'s — only the
    interleaving of completions differs.

    ``max_flows`` is a global budget divided evenly across shards (each shard
    enforces ``ceil(max_flows / shards)``), so bounded memory survives
    sharding; under capacity pressure the eviction *victims* can differ from
    the single-table global LRU, which is the documented trade-off.
    """

    def __init__(
        self,
        shards: int = 4,
        *,
        idle_timeout: float = 60.0,
        close_grace: float = 1.0,
        max_flows: int | None = None,
        max_packets: int | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        per_shard_flows = None
        if max_flows is not None:
            if max_flows < 1:
                raise ValueError(f"max_flows must be at least 1, got {max_flows}")
            per_shard_flows = -(-max_flows // shards)  # ceil division
        self.max_flows = max_flows
        self._tables: tuple[FlowTable, ...] = tuple(
            FlowTable(
                idle_timeout=idle_timeout,
                close_grace=close_grace,
                max_flows=per_shard_flows,
                max_packets=max_packets,
            )
            for _ in range(shards)
        )
        self._clock = float("-inf")

    # --------------------------------------------------------------- topology
    @property
    def shard_count(self) -> int:
        return len(self._tables)

    @property
    def tables(self) -> tuple[FlowTable, ...]:
        """The underlying shards (read-only view for workers and metrics)."""
        return self._tables

    def shard_index(self, key: FlowKey) -> int:
        """The shard owning ``key`` (stable: int-tuple hashes are unsalted)."""
        return hash(key) % len(self._tables)

    def occupancy(self) -> list[int]:
        """Tracked connections per shard (backpressure monitoring)."""
        return [len(table) for table in self._tables]

    def __len__(self) -> int:
        return sum(len(table) for table in self._tables)

    @property
    def clock(self) -> float:
        """The global stream high-water timestamp across all shards."""
        return self._clock

    # -------------------------------------------------------------- ingestion
    def add(self, packet: Packet) -> list[tuple[Connection, CompletionReason]]:
        """Route ``packet`` to its shard; returns that shard's completions."""
        key = flow_key_of(packet)
        table = self._tables[self.shard_index(key)]
        completed: list[tuple[Connection, CompletionReason]] = []
        # Catch the shard up to global stream time first, so timers expire
        # exactly when an intervening packet (on any shard) would have
        # expired them in a single table.
        if self._clock > table.clock:
            completed.extend(table.poll(self._clock))
        completed.extend(table.add(packet, key))
        self._clock = max(self._clock, packet.timestamp)
        return completed

    def poll(self, now: float | None = None) -> list[tuple[Connection, CompletionReason]]:
        """Advance every shard to ``now`` (or the global clock) and expire timers."""
        if now is not None:
            self._clock = max(self._clock, float(now))
        completed: list[tuple[Connection, CompletionReason]] = []
        for table in self._tables:
            completed.extend(table.poll(self._clock))
        return completed

    def drain(self) -> list[tuple[Connection, CompletionReason]]:
        """Merged end-of-stream drain of every shard, oldest first.

        Shards whose timers already expired against global stream time are
        completed with their true reason (CLOSED/IDLE) before the remainder
        drains, matching what a single table would have emitted mid-stream.
        """
        merged = self.poll()
        merged += [item for table in self._tables for item in table.drain()]
        merged.sort(
            key=lambda item: item[0].packets[0].timestamp if item[0].packets else 0.0
        )
        return merged


def assemble_connections(packets: Iterable[Packet]) -> list[Connection]:
    """Convenience wrapper: assemble ``packets`` and return the connections."""
    assembler = ConnectionAssembler()
    assembler.add_all(packets)
    return assembler.connections()


def packet_stream(connections: Iterable[Connection]) -> list[Packet]:
    """The time-ordered raw packet stream of ``connections``.

    Every packet is copied (so replaying never mutates the source
    connections) and the result is stably sorted by capture timestamp — the
    canonical way to turn assembled connections back into the stream a
    :class:`FlowTable`/streaming detector would observe on the wire.
    """
    packets = [packet.copy() for connection in connections for packet in connection]
    packets.sort(key=lambda packet: packet.timestamp)
    return packets


def split_connections(
    connections: list[Connection], train_fraction: float, rng
) -> tuple[list[Connection], list[Connection]]:
    """Randomly split connections into train/test according to ``train_fraction``."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    order = rng.permutation(len(connections))
    cut = int(round(len(connections) * train_fraction))
    train = [connections[i] for i in order[:cut]]
    test = [connections[i] for i in order[cut:]]
    return train, test
