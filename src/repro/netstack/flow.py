"""Flow keys and connection assembly.

The CLAP pipeline is connection-oriented: detection scores, localisation and
labelling all operate on one TCP connection at a time.  This module groups a
stream of packets (e.g. read from a capture) into :class:`Connection` objects
keyed by the canonical 5-tuple, and assigns each packet its logical direction
relative to the connection originator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.netstack.addresses import int_to_ip
from repro.netstack.packet import Direction, Packet


@dataclass(frozen=True)
class FlowKey:
    """Canonical bidirectional 5-tuple (protocol fixed to TCP).

    The key is normalised so that both directions of the same connection map
    to the same value: the (address, port) pair that sorts lower is stored
    first.
    """

    ip_a: int
    port_a: int
    ip_b: int
    port_b: int

    @classmethod
    def from_packet(cls, packet: Packet) -> "FlowKey":
        src = (packet.ip.src, packet.tcp.src_port)
        dst = (packet.ip.dst, packet.tcp.dst_port)
        first, second = (src, dst) if src <= dst else (dst, src)
        return cls(ip_a=first[0], port_a=first[1], ip_b=second[0], port_b=second[1])

    def __str__(self) -> str:
        return (
            f"{int_to_ip(self.ip_a)}:{self.port_a} <-> "
            f"{int_to_ip(self.ip_b)}:{self.port_b}"
        )


@dataclass
class Connection:
    """An ordered train of packets belonging to one TCP connection."""

    key: FlowKey
    packets: List[Packet] = field(default_factory=list)
    # The connection originator (client); set from the first packet seen.
    client_ip: Optional[int] = None
    client_port: Optional[int] = None

    def __len__(self) -> int:
        return len(self.packets)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.packets)

    def append(self, packet: Packet) -> None:
        """Append ``packet``, assigning its direction relative to the client."""
        if self.client_ip is None:
            self.client_ip = packet.ip.src
            self.client_port = packet.tcp.src_port
        if packet.ip.src == self.client_ip and packet.tcp.src_port == self.client_port:
            packet.direction = Direction.CLIENT_TO_SERVER
        else:
            packet.direction = Direction.SERVER_TO_CLIENT
        self.packets.append(packet)

    @property
    def duration(self) -> float:
        """Seconds between the first and last packet (0.0 for single packets)."""
        if len(self.packets) < 2:
            return 0.0
        return self.packets[-1].timestamp - self.packets[0].timestamp

    @property
    def has_handshake(self) -> bool:
        """True if the connection contains a SYN followed by a SYN-ACK."""
        saw_syn = False
        for packet in self.packets:
            if packet.tcp.is_syn and not packet.tcp.is_ack:
                saw_syn = True
            elif saw_syn and packet.tcp.is_syn and packet.tcp.is_ack:
                return True
        return False

    def client_packets(self) -> List[Packet]:
        return [p for p in self.packets if p.direction is Direction.CLIENT_TO_SERVER]

    def server_packets(self) -> List[Packet]:
        return [p for p in self.packets if p.direction is Direction.SERVER_TO_CLIENT]

    def injected_indices(self) -> List[int]:
        """Indices of packets flagged as injected/modified by an attack."""
        return [index for index, packet in enumerate(self.packets) if packet.injected]

    def copy(self) -> "Connection":
        """Deep-enough copy: packets (and their headers) are duplicated."""
        clone = Connection(key=self.key, client_ip=self.client_ip, client_port=self.client_port)
        clone.packets = [packet.copy() for packet in self.packets]
        return clone

    def sort_by_time(self) -> None:
        """Stable-sort packets by capture timestamp."""
        self.packets.sort(key=lambda packet: packet.timestamp)


class ConnectionAssembler:
    """Group an arbitrary packet stream into connections.

    A new connection is opened for a flow key when either the key has not been
    seen before or the previous connection on that key was closed by RST/FIN
    exchange and the new packet is a fresh SYN.
    """

    def __init__(self) -> None:
        self._active: Dict[FlowKey, Connection] = {}
        self._finished: List[Connection] = []

    def add(self, packet: Packet) -> Connection:
        """Route ``packet`` to its connection, creating one if needed."""
        key = FlowKey.from_packet(packet)
        connection = self._active.get(key)
        starts_new = packet.tcp.is_syn and not packet.tcp.is_ack
        if connection is None or (starts_new and self._looks_closed(connection)):
            if connection is not None:
                self._finished.append(connection)
            connection = Connection(key=key)
            self._active[key] = connection
        connection.append(packet)
        return connection

    def add_all(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.add(packet)

    @staticmethod
    def _looks_closed(connection: Connection) -> bool:
        if not connection.packets:
            return False
        tail = connection.packets[-3:]
        return any(p.tcp.is_rst or p.tcp.is_fin for p in tail)

    def connections(self) -> List[Connection]:
        """All connections assembled so far, in order of first packet."""
        everything = self._finished + list(self._active.values())
        everything.sort(key=lambda conn: conn.packets[0].timestamp if conn.packets else 0.0)
        return everything


def assemble_connections(packets: Iterable[Packet]) -> List[Connection]:
    """Convenience wrapper: assemble ``packets`` and return the connections."""
    assembler = ConnectionAssembler()
    assembler.add_all(packets)
    return assembler.connections()


def split_connections(
    connections: List[Connection], train_fraction: float, rng
) -> Tuple[List[Connection], List[Connection]]:
    """Randomly split connections into train/test according to ``train_fraction``."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError(f"train_fraction must be in (0, 1), got {train_fraction}")
    order = rng.permutation(len(connections))
    cut = int(round(len(connections) * train_fraction))
    train = [connections[i] for i in order[:cut]]
    test = [connections[i] for i in order[cut:]]
    return train, test
