"""Deterministic random-number helpers.

Every stochastic component in the library (traffic generation, weight
initialisation, attack selection, train/test splitting) accepts either a seed
or a :class:`numpy.random.Generator`.  Centralising the coercion here keeps all
experiments reproducible and avoids accidental use of the global numpy state.
"""

from __future__ import annotations


import numpy as np

SeedLike = None | int | np.random.Generator


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh, OS-entropy-seeded generator; an ``int`` produces
    a deterministic generator; an existing generator is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Useful when one seeded generator must fan out into several components that
    should not perturb each other's random streams (e.g. the traffic generator
    and the attack injector).
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (stream * 0x9E3779B97F4A7C15 & (2**63 - 1))
    return np.random.default_rng(seed)


class RngMixin:
    """Mixin giving a class a lazily-created, seedable ``self.rng``."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng: np.random.Generator | None = None
        self._seed = seed

    @property
    def rng(self) -> np.random.Generator:
        if self._rng is None:
            self._rng = ensure_rng(self._seed)
        return self._rng

    def reseed(self, seed: SeedLike) -> None:
        """Replace the internal generator with one seeded by ``seed``."""
        self._seed = seed
        self._rng = ensure_rng(seed)
