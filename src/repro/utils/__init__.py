"""Shared utilities: seeded randomness, logging and timing helpers."""

from repro.utils.rng import RngMixin, derive_rng, ensure_rng
from repro.utils.timing import Stopwatch

__all__ = ["RngMixin", "derive_rng", "ensure_rng", "Stopwatch"]
