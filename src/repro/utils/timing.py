"""Lightweight timing helpers used by the throughput experiments (Table 3)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Example
    -------
    >>> sw = Stopwatch()
    >>> with sw.lap("inference"):
    ...     _ = sum(range(1000))
    >>> sw.total("inference") >= 0.0
    True
    """

    laps: dict[str, list[float]] = field(default_factory=dict)

    class _Lap:
        def __init__(self, watch: "Stopwatch", name: str) -> None:
            self._watch = watch
            self._name = name
            self._start = 0.0

        def __enter__(self) -> "Stopwatch._Lap":
            self._start = time.perf_counter()
            return self

        def __exit__(self, *exc) -> None:
            elapsed = time.perf_counter() - self._start
            self._watch.laps.setdefault(self._name, []).append(elapsed)

    def lap(self, name: str) -> "Stopwatch._Lap":
        """Return a context manager that records one lap under ``name``."""
        return Stopwatch._Lap(self, name)

    def total(self, name: str) -> float:
        """Total seconds accumulated under ``name`` (0.0 if never recorded)."""
        return float(sum(self.laps.get(name, [])))

    def count(self, name: str) -> int:
        """Number of laps recorded under ``name``."""
        return len(self.laps.get(name, []))

    def rate(self, name: str, items: int) -> float:
        """Items per second for ``items`` work units timed under ``name``."""
        elapsed = self.total(name)
        if elapsed <= 0.0:
            return float("inf")
        return items / elapsed
