"""CLAP reproduction: detecting DPI evasion attacks with context learning.

This package is a from-scratch reproduction of CLAP (Zhu et al., CoNEXT 2020),
including every substrate the paper depends on:

* :mod:`repro.netstack` -- IPv4/TCP packet crafting, parsing and PCAP I/O.
* :mod:`repro.tcpstate` -- the reference TCP connection-tracking state machine
  used to label training traffic.
* :mod:`repro.traffic` -- a benign traffic corpus generator standing in for the
  MAWI backbone captures.
* :mod:`repro.attacks` -- a simulator for the 73 DPI evasion strategies from
  SymTCP, lib-erate and Geneva.
* :mod:`repro.nn` -- a small numpy neural-network library (GRU with exposed
  gates, autoencoders, Adam, backpropagation through time).
* :mod:`repro.features` -- the Table-7 feature set and context-profile fusion.
* :mod:`repro.core` -- the CLAP pipeline itself (stages a-d).
* :mod:`repro.baselines` -- Baseline #1 (intra-packet only) and Baseline #2
  (Kitsune-style ensemble of autoencoders).
* :mod:`repro.evaluation` -- AUC-ROC / EER / Top-N metrics and the experiment
  runner used by the benchmark harness.

Quickstart
----------

>>> from repro import BenignDataset, Clap, ClapConfig, AttackInjector, get_strategy
>>> dataset = BenignDataset.synthesize(connection_count=120, seed=0)
>>> clap = Clap(ClapConfig.fast())
>>> report = clap.fit(dataset.train)
>>> strategy = get_strategy("Snort: Injected RST Pure")
>>> adversarial = AttackInjector(seed=1).attack_connection(strategy, dataset.test[0])
>>> clap.score_connection(adversarial.connection) >= 0.0
True
"""

from repro.attacks import (
    AttackInjector,
    AttackSource,
    AttackStrategy,
    ContextCategory,
    all_strategies,
    get_strategy,
)
from repro.core import Clap, ClapConfig, DetectionResult
from repro.baselines import IntraPacketBaseline, KitsuneDetector
from repro.evaluation import ExperimentRunner, auc_roc, equal_error_rate, roc_curve
from repro.netstack import (
    CompletionReason,
    Connection,
    FlowTable,
    Packet,
    ShardedFlowTable,
    read_pcap,
    write_pcap,
)
from repro.serve import (
    Alert,
    DetectionEvent,
    DropPolicy,
    FlushPolicy,
    NDJSONSource,
    ParallelStreamingDetector,
    PcapSource,
    ReplaySource,
    StreamingDetector,
    StreamingMetrics,
)
from repro.traffic import BenignDataset, TrafficGenerator
from repro.version import __version__

__all__ = [
    "Alert",
    "AttackInjector",
    "AttackSource",
    "AttackStrategy",
    "BenignDataset",
    "Clap",
    "ClapConfig",
    "CompletionReason",
    "Connection",
    "ContextCategory",
    "DetectionEvent",
    "DetectionResult",
    "DropPolicy",
    "ExperimentRunner",
    "FlowTable",
    "FlushPolicy",
    "IntraPacketBaseline",
    "KitsuneDetector",
    "NDJSONSource",
    "Packet",
    "ParallelStreamingDetector",
    "PcapSource",
    "ReplaySource",
    "ShardedFlowTable",
    "StreamingDetector",
    "StreamingMetrics",
    "TrafficGenerator",
    "__version__",
    "all_strategies",
    "auc_roc",
    "equal_error_rate",
    "get_strategy",
    "read_pcap",
    "roc_curve",
    "write_pcap",
]
