"""TCP connection-tracking states and the 22-class label space.

The paper labels every packet of the benign training traffic with the state an
instrumented Linux conntrack transitions to as a result of that packet,
concatenated with a subtle in-/out-of-window verdict, giving
``11 master states x 2 window verdicts = 22`` classes.  This module defines
that label space; :mod:`repro.tcpstate.conntrack` produces the labels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MasterState(enum.IntEnum):
    """The 11 connection-tracking master states (netfilter conntrack flavour)."""

    NONE = 0
    SYN_SENT = 1
    SYN_RECV = 2
    ESTABLISHED = 3
    FIN_WAIT = 4
    CLOSE_WAIT = 5
    LAST_ACK = 6
    TIME_WAIT = 7
    CLOSE = 8
    CLOSING = 9
    SYN_SENT2 = 10

    @property
    def short_name(self) -> str:
        return self.name


class WindowVerdict(enum.IntEnum):
    """Whether a packet falls inside the recipient's receive window."""

    IN_WINDOW = 0
    OUT_OF_WINDOW = 1


NUM_MASTER_STATES = len(MasterState)
NUM_WINDOW_VERDICTS = len(WindowVerdict)
NUM_LABEL_CLASSES = NUM_MASTER_STATES * NUM_WINDOW_VERDICTS


@dataclass(frozen=True)
class StateLabel:
    """A (master state, window verdict) pair — one RNN training label."""

    state: MasterState
    window: WindowVerdict

    @property
    def class_index(self) -> int:
        """Dense class index in ``[0, NUM_LABEL_CLASSES)``."""
        return int(self.state) * NUM_WINDOW_VERDICTS + int(self.window)

    @classmethod
    def from_class_index(cls, index: int) -> "StateLabel":
        if not 0 <= index < NUM_LABEL_CLASSES:
            raise ValueError(f"label class index out of range: {index}")
        state = MasterState(index // NUM_WINDOW_VERDICTS)
        window = WindowVerdict(index % NUM_WINDOW_VERDICTS)
        return cls(state=state, window=window)

    @property
    def name(self) -> str:
        suffix = "IN" if self.window is WindowVerdict.IN_WINDOW else "OUT"
        return f"{self.state.name}/{suffix}"

    def __str__(self) -> str:
        return self.name


def all_labels() -> list[StateLabel]:
    """Every possible label, ordered by class index."""
    return [StateLabel.from_class_index(index) for index in range(NUM_LABEL_CLASSES)]


def label_names() -> list[str]:
    """Human-readable names for every class index (used in Table 5 output)."""
    return [label.name for label in all_labels()]
