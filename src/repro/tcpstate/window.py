"""Per-direction sequence/window bookkeeping for the conntrack machine.

This is a simplified re-implementation of netfilter's ``tcp_in_window``
tracking: for each endpoint we maintain the highest sequence number it has
sent, the right edge of the receive window it has advertised to its peer, and
the largest window it has ever advertised.  A packet is "in window" when its
sequence span fits the limits advertised by the receiver and its ACK (if any)
does not acknowledge data the peer never sent.
"""

from __future__ import annotations

from dataclasses import dataclass

# 32-bit sequence-number arithmetic helpers -----------------------------------

SEQ_MODULUS = 2**32


def seq_add(seq: int, delta: int) -> int:
    return (seq + delta) % SEQ_MODULUS


def seq_diff(a: int, b: int) -> int:
    """Signed difference ``a - b`` interpreted modulo 2^32 (RFC 1982 style)."""
    diff = (a - b) % SEQ_MODULUS
    if diff >= SEQ_MODULUS // 2:
        diff -= SEQ_MODULUS
    return diff


def seq_before(a: int, b: int) -> bool:
    return seq_diff(a, b) < 0


def seq_after(a: int, b: int) -> bool:
    return seq_diff(a, b) > 0


def seq_between(value: int, low: int, high: int) -> bool:
    """True if ``low <= value <= high`` in circular sequence space."""
    return seq_diff(value, low) >= 0 and seq_diff(high, value) >= 0


@dataclass
class EndpointWindow:
    """Sequence/window state for one endpoint of a connection."""

    # Highest sequence number (exclusive) this endpoint has sent.
    snd_end: int = 0
    # Right edge of the receive window this endpoint has advertised
    # (last ack it sent + last window it advertised, scaled).
    rcv_limit: int = 0
    # Largest (scaled) window this endpoint has ever advertised.
    max_window: int = 0
    # Window scale shift negotiated by this endpoint (0 if none).
    scale: int = 0
    # Whether we have seen at least one packet from this endpoint.
    initialised: bool = False

    def scaled_window(self, raw_window: int, handshake: bool) -> int:
        """Apply the negotiated window scale (never applied to SYN segments)."""
        if handshake:
            return raw_window
        return raw_window << self.scale

    def observe_sent(self, seq: int, span: int, ack: int, raw_window: int, *,
                     has_ack: bool, handshake: bool) -> None:
        """Update this endpoint's state after it sent a segment."""
        end = seq_add(seq, span)
        if not self.initialised or seq_after(end, self.snd_end):
            self.snd_end = end
        window = self.scaled_window(raw_window, handshake)
        if window > self.max_window:
            self.max_window = window
        if has_ack:
            limit = seq_add(ack, window)
            if not self.initialised or seq_after(limit, self.rcv_limit):
                self.rcv_limit = limit
        self.initialised = True

    def initialise_from_syn(self, seq: int, span: int, raw_window: int, scale: int) -> None:
        """Seed state from this endpoint's initial SYN."""
        self.snd_end = seq_add(seq, span)
        self.max_window = max(raw_window, 1)
        self.scale = scale
        self.rcv_limit = 0
        self.initialised = True


def in_window(sender: EndpointWindow, receiver: EndpointWindow, seq: int, span: int,
              ack: int, *, has_ack: bool) -> bool:
    """Netfilter-style acceptability check for a segment from ``sender``.

    The three conditions (mirroring ``tcp_in_window``):

    I.   The segment's end does not exceed the right edge of the window the
         receiver has advertised (with a one-max-window tolerance before the
         receiver has advertised anything).
    II.  The segment is not older than one maximum window before the highest
         byte the sender has already sent (tolerates retransmissions but
         rejects ancient or wildly out-of-range sequence numbers).
    III. If the segment carries an ACK, it does not acknowledge data the
         receiver has never sent.
    """
    end = seq_add(seq, span)

    # Condition I --------------------------------------------------------
    if receiver.initialised and receiver.rcv_limit != 0:
        if seq_diff(end, receiver.rcv_limit) > 0:
            return False
    elif receiver.initialised:
        # Receiver seen but no ACK from it yet: allow up to one max window
        # past the highest byte the sender has sent.
        allowance = max(receiver.max_window, sender.max_window, 1)
        if seq_diff(end, seq_add(sender.snd_end, allowance)) > 0:
            return False

    # Condition II -------------------------------------------------------
    if sender.initialised:
        window = max(receiver.max_window, sender.max_window, 1)
        lower_bound = seq_add(sender.snd_end, -window)
        if seq_diff(seq, lower_bound) < 0:
            return False

    # Condition III ------------------------------------------------------
    if has_ack and receiver.initialised:
        if seq_diff(ack, receiver.snd_end) > 0:
            return False
        window = max(sender.max_window, receiver.max_window, 1)
        if seq_diff(ack, seq_add(receiver.snd_end, -(2 * window))) < 0:
            return False

    return True
