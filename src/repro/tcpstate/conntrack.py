"""Reference TCP connection-tracking state machine (the label source).

The paper instruments the Linux ``conntrack`` module and replays benign
captures through it to harvest, for every packet, the connection state the
kernel transitions to plus an in-/out-of-window verdict.  This module
re-implements that reference behaviour: a per-connection state machine with
netfilter-flavoured master states, rigorous endhost-style packet validation
(checksums, header consistency, flag combinations) and simplified
``tcp_in_window`` sequence tracking.

The machine deliberately models a *rigorous endhost*: packets that a real TCP
stack would silently discard (bad checksum, bogus data offset, invalid flag
combination, failed MD5 option) do not advance the state machine.  It is this
very rigour that DPI evasion attacks exploit, and that the labels must encode
so the RNN can learn the benign inter-packet context.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TcpFlags
from repro.tcpstate.states import MasterState, StateLabel, WindowVerdict
from repro.tcpstate.window import EndpointWindow, in_window


@dataclass(frozen=True)
class PacketObservation:
    """Everything the reference implementation reports for one packet."""

    label: StateLabel
    accepted: bool
    state_before: MasterState
    state_after: MasterState
    window_verdict: WindowVerdict
    drop_reason: str | None = None


# Flag combinations that a rigorous stack treats as invalid/bogus segments.
_INVALID_FLAG_COMBINATIONS = (
    TcpFlags.SYN | TcpFlags.FIN,
    TcpFlags.SYN | TcpFlags.RST,
    TcpFlags.FIN | TcpFlags.RST,
)


class ConntrackMachine:
    """Track one TCP connection and label each packet as conntrack would."""

    def __init__(self) -> None:
        self.state: MasterState = MasterState.NONE
        self._endpoints: dict[Direction, EndpointWindow] = {
            Direction.CLIENT_TO_SERVER: EndpointWindow(),
            Direction.SERVER_TO_CLIENT: EndpointWindow(),
        }
        self._offered_scale: dict[Direction, int | None] = {
            Direction.CLIENT_TO_SERVER: None,
            Direction.SERVER_TO_CLIENT: None,
        }
        self._scaling_resolved = False
        self.history: list[PacketObservation] = []

    # ------------------------------------------------------------------ public
    def process(self, packet: Packet) -> PacketObservation:
        """Feed one packet; returns the observation (and records it)."""
        state_before = self.state
        drop_reason = self._validate(packet)
        verdict = self._window_verdict(packet)
        accepted = drop_reason is None

        if accepted:
            self._negotiate_scaling(packet)
            self._advance_state(packet)
            self._update_window(packet)

        observation = PacketObservation(
            label=StateLabel(state=self.state, window=verdict),
            accepted=accepted,
            state_before=state_before,
            state_after=self.state,
            window_verdict=verdict,
            drop_reason=drop_reason,
        )
        self.history.append(observation)
        return observation

    def would_accept(self, packet: Packet) -> bool:
        """Check acceptability without mutating the machine (DPI-discrepancy tests)."""
        return self._validate(packet) is None

    # -------------------------------------------------------------- validation
    def _validate(self, packet: Packet) -> str | None:
        """Return a drop reason, or ``None`` when a rigorous endhost accepts."""
        if packet.ip.version != 4:
            return "ip-version"
        effective_ihl = packet.ip.effective_ihl()
        if effective_ihl < 5:
            return "ip-header-length"
        if not packet.ip.has_correct_checksum(packet.tcp.header_length + len(packet.payload)):
            return "ip-checksum"
        if not packet.ip_total_length_consistent():
            return "ip-total-length"
        if packet.ip.ttl == 0:
            return "ttl-zero"
        offset = packet.tcp.effective_data_offset()
        if offset < 5:
            return "tcp-data-offset"
        if offset * 4 > packet.tcp.header_length + len(packet.payload):
            return "tcp-data-offset"
        if not packet.tcp_checksum_ok():
            return "tcp-checksum"
        flags = packet.tcp.flags
        if flags & 0x1FF == 0:
            return "null-flags"
        for combination in _INVALID_FLAG_COMBINATIONS:
            if flags & combination == combination:
                return "invalid-flag-combination"
        md5 = packet.tcp.md5_option()
        if md5 is not None and not md5.valid:
            return "md5-signature"
        if packet.tcp.is_syn and not packet.tcp.is_ack and len(packet.payload) > 0:
            # Data on an initial SYN is technically legal but conntrack-style
            # trackers treat it as suspicious; a rigorous endhost queues it but
            # our reference (like the paper's) rejects SYN payloads.
            return "syn-with-payload"
        if packet.tcp.is_rst:
            reason = self._validate_rst(packet)
            if reason is not None:
                return reason
        if packet.tcp.has_flag(TcpFlags.ACK):
            receiver = self._endpoints[packet.direction.flipped()]
            if receiver.initialised:
                from repro.tcpstate.window import seq_diff

                if seq_diff(packet.tcp.ack, receiver.snd_end) > 0:
                    return "ack-of-unsent-data"
        timestamp_reason = self._validate_timestamp(packet)
        if timestamp_reason is not None:
            return timestamp_reason
        if self.state is MasterState.ESTABLISHED and not packet.tcp.has_flag(TcpFlags.ACK) \
                and not packet.tcp.is_rst and not packet.tcp.is_syn:
            # Data segments after the handshake must carry ACK (RFC 793).
            return "missing-ack-flag"
        return None

    def _validate_rst(self, packet: Packet) -> str | None:
        """RST acceptability: must land exactly on the expected sequence."""
        receiver = self._endpoints[packet.direction.flipped()]
        sender = self._endpoints[packet.direction]
        if not sender.initialised and self.state is MasterState.NONE:
            return "rst-without-connection"
        if receiver.initialised and receiver.rcv_limit != 0 and not in_window(
            sender, receiver, packet.tcp.seq, max(packet.sequence_span(), 1),
            packet.tcp.ack, has_ack=packet.tcp.has_flag(TcpFlags.ACK),
        ):
            return "rst-out-of-window"
        return None

    def _validate_timestamp(self, packet: Packet) -> str | None:
        """PAWS-style check: timestamps must not run backwards."""
        option = packet.tcp.timestamp_option()
        if option is None:
            return None
        if option.tsval == 0 and self.state is not MasterState.NONE:
            return "timestamp-zero"
        last = getattr(self, "_last_tsval", {}).get(packet.direction)
        if last is not None:
            # PAWS (RFC 7323): a timestamp earlier than the last one seen from
            # the same sender marks the segment as unacceptably old.
            delta = (option.tsval - last) % (2**32)
            if delta >= 2**31:
                return "timestamp-regression"
        return None

    # ---------------------------------------------------------- state machine
    def _advance_state(self, packet: Packet) -> None:
        flags = packet.tcp.flags
        direction = packet.direction
        is_syn = bool(flags & TcpFlags.SYN)
        is_ack = bool(flags & TcpFlags.ACK)
        is_fin = bool(flags & TcpFlags.FIN)
        is_rst = bool(flags & TcpFlags.RST)
        state = self.state

        if is_rst:
            if state is not MasterState.NONE:
                self.state = MasterState.CLOSE
            return

        if state is MasterState.NONE:
            if is_syn and not is_ack and direction is Direction.CLIENT_TO_SERVER:
                self.state = MasterState.SYN_SENT
            return

        if state is MasterState.SYN_SENT:
            if is_syn and is_ack and direction is Direction.SERVER_TO_CLIENT:
                self.state = MasterState.SYN_RECV
            elif is_syn and not is_ack and direction is Direction.SERVER_TO_CLIENT:
                self.state = MasterState.SYN_SENT2
            return

        if state is MasterState.SYN_SENT2:
            if is_syn and is_ack:
                self.state = MasterState.SYN_RECV
            return

        if state is MasterState.SYN_RECV:
            if is_fin:
                self.state = MasterState.FIN_WAIT
            elif is_ack and not is_syn and direction is Direction.CLIENT_TO_SERVER:
                self.state = MasterState.ESTABLISHED
            return

        if state is MasterState.ESTABLISHED:
            if is_fin:
                self.state = MasterState.FIN_WAIT
            return

        if state is MasterState.FIN_WAIT:
            if is_fin:
                self.state = MasterState.CLOSING
            elif is_ack:
                self.state = MasterState.CLOSE_WAIT
            return

        if state is MasterState.CLOSE_WAIT:
            if is_fin:
                self.state = MasterState.LAST_ACK
            return

        if state is MasterState.CLOSING:
            if is_ack:
                self.state = MasterState.TIME_WAIT
            return

        if state is MasterState.LAST_ACK:
            if is_ack:
                self.state = MasterState.TIME_WAIT
            return

        if state is MasterState.TIME_WAIT:
            if is_syn and not is_ack:
                self.state = MasterState.SYN_SENT
            return

        # CLOSE: a fresh SYN may reopen the conversation.
        if state is MasterState.CLOSE:
            if is_syn and not is_ack:
                self.state = MasterState.SYN_SENT
            return

    # ------------------------------------------------------- window tracking
    def _window_verdict(self, packet: Packet) -> WindowVerdict:
        sender = self._endpoints[packet.direction]
        receiver = self._endpoints[packet.direction.flipped()]
        if packet.tcp.is_syn and not sender.initialised:
            return WindowVerdict.IN_WINDOW
        if not sender.initialised and not receiver.initialised:
            return WindowVerdict.IN_WINDOW
        ok = in_window(
            sender,
            receiver,
            packet.tcp.seq,
            packet.sequence_span(),
            packet.tcp.ack,
            has_ack=packet.tcp.has_flag(TcpFlags.ACK),
        )
        return WindowVerdict.IN_WINDOW if ok else WindowVerdict.OUT_OF_WINDOW

    def _negotiate_scaling(self, packet: Packet) -> None:
        if not packet.tcp.is_syn:
            if not self._scaling_resolved and self.state in (
                MasterState.ESTABLISHED,
                MasterState.SYN_RECV,
            ):
                self._resolve_scaling()
            return
        option = packet.tcp.window_scale_option()
        self._offered_scale[packet.direction] = option.shift if option is not None else None

    def _resolve_scaling(self) -> None:
        client = self._offered_scale[Direction.CLIENT_TO_SERVER]
        server = self._offered_scale[Direction.SERVER_TO_CLIENT]
        if client is not None and server is not None:
            self._endpoints[Direction.CLIENT_TO_SERVER].scale = client
            self._endpoints[Direction.SERVER_TO_CLIENT].scale = server
        self._scaling_resolved = True

    def _update_window(self, packet: Packet) -> None:
        sender = self._endpoints[packet.direction]
        is_handshake = packet.tcp.is_syn
        if is_handshake and not sender.initialised:
            option = packet.tcp.window_scale_option()
            sender.initialise_from_syn(
                packet.tcp.seq,
                packet.sequence_span(),
                packet.tcp.window,
                option.shift if option is not None else 0,
            )
        sender.observe_sent(
            packet.tcp.seq,
            packet.sequence_span(),
            packet.tcp.ack,
            packet.tcp.window,
            has_ack=packet.tcp.has_flag(TcpFlags.ACK),
            handshake=is_handshake,
        )
        option = packet.tcp.timestamp_option()
        if option is not None:
            if not hasattr(self, "_last_tsval"):
                self._last_tsval: dict[Direction, int] = {}
            self._last_tsval[packet.direction] = option.tsval


class ConnectionLabeler:
    """Replay whole connections through :class:`ConntrackMachine`.

    This is the "traffic replayer" of the paper's Section 4.1: it harvests,
    per packet, the ``(master state, window verdict)`` label used to train the
    Stage-(a) RNN.
    """

    def label_connection(self, packets: list[Packet]) -> list[StateLabel]:
        """Return one label per packet of a single connection."""
        machine = ConntrackMachine()
        return [machine.process(packet).label for packet in packets]

    def observe_connection(self, packets: list[Packet]) -> list[PacketObservation]:
        """Like :meth:`label_connection` but returns full observations."""
        machine = ConntrackMachine()
        return [machine.process(packet) for packet in packets]

    def label_class_indices(self, packets: list[Packet]) -> list[int]:
        """Dense class indices (``[0, 22)``) for RNN training targets."""
        return [label.class_index for label in self.label_connection(packets)]
