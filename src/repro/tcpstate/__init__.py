"""Reference TCP state machine used to label training traffic.

Stands in for the instrumented Linux conntrack module of the paper: replaying
a connection through :class:`ConnectionLabeler` yields, per packet, the
``(master state, in-/out-of-window)`` label that trains the Stage-(a) RNN.
"""

from repro.tcpstate.conntrack import ConnectionLabeler, ConntrackMachine, PacketObservation
from repro.tcpstate.states import (
    NUM_LABEL_CLASSES,
    NUM_MASTER_STATES,
    NUM_WINDOW_VERDICTS,
    MasterState,
    StateLabel,
    WindowVerdict,
    all_labels,
    label_names,
)
from repro.tcpstate.window import (
    EndpointWindow,
    in_window,
    seq_add,
    seq_after,
    seq_before,
    seq_between,
    seq_diff,
)

__all__ = [
    "ConnectionLabeler",
    "ConntrackMachine",
    "EndpointWindow",
    "MasterState",
    "NUM_LABEL_CLASSES",
    "NUM_MASTER_STATES",
    "NUM_WINDOW_VERDICTS",
    "PacketObservation",
    "StateLabel",
    "WindowVerdict",
    "all_labels",
    "in_window",
    "label_names",
    "seq_add",
    "seq_after",
    "seq_before",
    "seq_between",
    "seq_diff",
]
