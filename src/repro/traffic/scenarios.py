"""Benign connection scenarios.

Each scenario scripts one realistic TCP conversation on top of
:class:`~repro.traffic.session.TcpSessionBuilder`.  Together the scenarios
cover the benign state space CLAP must learn: every master state of the
reference tracker is reachable, common "odd but legitimate" events
(retransmissions, keep-alives, zero windows, resets, half-open connections)
are represented, and payload sizes span short interactive exchanges to bulk
transfers.

The scenario registry is keyed by name; the corpus generator draws scenarios
from a weighted mixture that loosely follows what backbone traffic such as the
MAWI captures contains (mostly short request/response flows, a tail of bulk
transfers, a few aborted or unusual flows).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

import numpy as np

from repro.netstack.packet import Direction, Packet
from repro.traffic.session import TcpSessionBuilder

ScenarioFunction = Callable[[TcpSessionBuilder, np.random.Generator], list[Packet]]

_REGISTRY: dict[str, "Scenario"] = {}


@dataclass(frozen=True)
class Scenario:
    """A named, weighted benign-connection scenario."""

    name: str
    weight: float
    build: ScenarioFunction
    description: str

    def __call__(self, session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
        self.build(session, rng)
        return session.packets


def scenario(name: str, weight: float, description: str):
    """Decorator registering a scenario function."""

    def decorator(function: ScenarioFunction) -> ScenarioFunction:
        _REGISTRY[name] = Scenario(name=name, weight=weight, build=function, description=description)
        return function

    return decorator


def registry() -> dict[str, Scenario]:
    """The full scenario registry (name -> scenario)."""
    return dict(_REGISTRY)


def scenario_names() -> list[str]:
    return sorted(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; available: {', '.join(scenario_names())}") from None


# ---------------------------------------------------------------------------
# Scenario definitions
# ---------------------------------------------------------------------------

@scenario("web_request", weight=0.34, description="Short HTTP-like request/response then graceful close")
def web_request(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(120, 900)))
    session.elapse_rtt()
    session.ack(Direction.SERVER_TO_CLIENT)
    response_size = int(rng.integers(400, 12_000))
    session.send(Direction.SERVER_TO_CLIENT, response_size)
    session.elapse_rtt()
    session.ack(Direction.CLIENT_TO_SERVER)
    initiator = Direction.CLIENT_TO_SERVER if rng.random() < 0.6 else Direction.SERVER_TO_CLIENT
    session.graceful_close(initiator)
    return session.packets


@scenario("bulk_download", weight=0.16, description="Large server-to-client transfer with periodic ACKs")
def bulk_download(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(80, 400)))
    session.ack(Direction.SERVER_TO_CLIENT)
    bursts = int(rng.integers(3, 8))
    for _ in range(bursts):
        session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(2_000, 9_000)))
        session.elapse_rtt()
        session.ack(Direction.CLIENT_TO_SERVER)
    session.graceful_close(Direction.SERVER_TO_CLIENT)
    return session.packets


@scenario("bulk_upload", weight=0.08, description="Large client-to-server transfer (e.g. POST upload)")
def bulk_upload(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    bursts = int(rng.integers(2, 6))
    for _ in range(bursts):
        session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(2_000, 8_000)))
        session.elapse_rtt()
        session.ack(Direction.SERVER_TO_CLIENT)
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(200, 1_500)))
    session.ack(Direction.CLIENT_TO_SERVER)
    session.graceful_close(Direction.CLIENT_TO_SERVER)
    return session.packets


@scenario("interactive", weight=0.12, description="SSH/telnet-like alternating small segments")
def interactive(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    exchanges = int(rng.integers(4, 15))
    for _ in range(exchanges):
        session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(1, 120)), advance=float(rng.uniform(0.05, 0.8)))
        session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(1, 300)))
        session.ack(Direction.CLIENT_TO_SERVER)
    session.graceful_close(Direction.CLIENT_TO_SERVER)
    return session.packets


@scenario("persistent_with_keepalive", weight=0.06, description="Idle persistent connection with keep-alive probes")
def persistent_with_keepalive(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(100, 600)))
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(300, 3_000)))
    session.ack(Direction.CLIENT_TO_SERVER)
    probes = int(rng.integers(1, 4))
    for _ in range(probes):
        session.keepalive(Direction.CLIENT_TO_SERVER)
        session.elapse_rtt()
        session.ack(Direction.SERVER_TO_CLIENT)
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(60, 400)))
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(200, 2_000)))
    session.ack(Direction.CLIENT_TO_SERVER)
    session.graceful_close(Direction.SERVER_TO_CLIENT)
    return session.packets


@scenario("retransmission", weight=0.07, description="Request/response with a retransmitted data segment")
def retransmission(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(100, 700)))
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(1_000, 5_000)))
    session.retransmit_last_data(Direction.SERVER_TO_CLIENT)
    session.ack(Direction.CLIENT_TO_SERVER)
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(500, 3_000)))
    session.ack(Direction.CLIENT_TO_SERVER)
    session.graceful_close(Direction.CLIENT_TO_SERVER)
    return session.packets


@scenario("client_abort", weight=0.05, description="Connection torn down by a client RST after some data")
def client_abort(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(80, 500)))
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(200, 2_000)))
    session.ack(Direction.CLIENT_TO_SERVER)
    session.rst(Direction.CLIENT_TO_SERVER, with_ack=True)
    return session.packets


@scenario("server_reset", weight=0.04, description="Server refuses with RST right after the request")
def server_reset(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(60, 400)))
    session.rst(Direction.SERVER_TO_CLIENT, with_ack=True)
    return session.packets


@scenario("half_open", weight=0.03, description="SYN and SYN-ACK with no final ACK (handshake never completes)")
def half_open(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.client_syn()
    session.server_synack()
    if rng.random() < 0.5:
        session.advance_time(1.0)
        session.server_synack()  # SYN-ACK retransmission
    return session.packets


@scenario("syn_scan_like", weight=0.02, description="Lone SYN answered by server RST (benign scanner/misconfig)")
def syn_scan_like(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.client_syn()
    session.elapse_rtt()
    session.rst(Direction.SERVER_TO_CLIENT, with_ack=True)
    return session.packets


@scenario("zero_window_stall", weight=0.03, description="Receiver advertises a zero window, then reopens it")
def zero_window_stall(session: TcpSessionBuilder, rng: np.random.Generator) -> list[Packet]:
    session.handshake()
    session.send(Direction.CLIENT_TO_SERVER, int(rng.integers(100, 500)))
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(1_000, 4_000)))
    session.ack(Direction.CLIENT_TO_SERVER, window=0)
    session.advance_time(float(rng.uniform(0.2, 1.0)))
    session.ack(Direction.CLIENT_TO_SERVER)
    session.send(Direction.SERVER_TO_CLIENT, int(rng.integers(1_000, 4_000)))
    session.ack(Direction.CLIENT_TO_SERVER)
    session.graceful_close(Direction.SERVER_TO_CLIENT)
    return session.packets
