"""Benign traffic corpus generation.

This module stands in for the MAWI backbone capture the paper trains on: it
emits a mixture of realistic, protocol-consistent TCP connections drawn from
the scenario registry, with per-connection variation in addresses, ports,
initial sequence numbers, MSS, window scaling, TTLs, timestamps and timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netstack.flow import Connection, FlowKey
from repro.netstack.packet import Packet
from repro.traffic.scenarios import Scenario, registry
from repro.traffic.session import TcpSessionBuilder
from repro.utils.rng import SeedLike, ensure_rng

# Common server ports weighted roughly like backbone traffic.
_SERVER_PORTS = np.array([443, 80, 8080, 22, 25, 993, 3306, 53, 8443, 5222])
_SERVER_PORT_WEIGHTS = np.array([0.45, 0.25, 0.06, 0.05, 0.04, 0.03, 0.03, 0.03, 0.03, 0.03])

# Typical initial TTL values and the hop-count decay seen at a backbone vantage point.
_INITIAL_TTLS = np.array([64, 128, 255])
_INITIAL_TTL_WEIGHTS = np.array([0.70, 0.25, 0.05])

_MSS_CHOICES = np.array([1460, 1440, 1400, 1380, 1360, 536])
_MSS_WEIGHTS = np.array([0.55, 0.15, 0.10, 0.08, 0.07, 0.05])


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs controlling corpus realism and size."""

    timestamp_probability: float = 0.85
    sack_probability: float = 0.9
    wscale_probability: float = 0.9
    start_time: float = 1_600_000_000.0
    mean_inter_connection_gap: float = 0.01
    scenario_weights: dict[str, float] | None = None


class TrafficGenerator:
    """Generate benign TCP connections from the scenario mixture."""

    def __init__(self, seed: SeedLike = None, config: GeneratorConfig | None = None) -> None:
        self.rng = ensure_rng(seed)
        self.config = config or GeneratorConfig()
        self._scenarios = registry()
        self._clock = self.config.start_time
        weights = self.config.scenario_weights
        names = sorted(self._scenarios)
        raw = np.array([
            weights.get(name, self._scenarios[name].weight) if weights else self._scenarios[name].weight
            for name in names
        ], dtype=float)
        self._scenario_names = names
        self._scenario_probabilities = raw / raw.sum()

    # ----------------------------------------------------------- single flows
    def random_address(self, private: bool = False) -> int:
        """A plausible random IPv4 address (avoids reserved first octets)."""
        if private:
            return (10 << 24) | int(self.rng.integers(0, 2**24))
        while True:
            first = int(self.rng.integers(1, 224))
            if first in (10, 127, 172, 192):
                continue
            rest = int(self.rng.integers(0, 2**24))
            return (first << 24) | rest

    def _pick_ttl(self) -> int:
        initial = int(self.rng.choice(_INITIAL_TTLS, p=_INITIAL_TTL_WEIGHTS))
        hops = int(self.rng.integers(4, 22))
        return max(initial - hops, 1)

    def _build_session(self, start_time: float) -> TcpSessionBuilder:
        use_wscale = self.rng.random() < self.config.wscale_probability
        return TcpSessionBuilder(
            client_ip=self.random_address(),
            server_ip=self.random_address(),
            client_port=int(self.rng.integers(1024, 65535)),
            server_port=int(self.rng.choice(_SERVER_PORTS, p=_SERVER_PORT_WEIGHTS)),
            start_time=start_time,
            client_isn=int(self.rng.integers(1, 2**32 - 1)),
            server_isn=int(self.rng.integers(1, 2**32 - 1)),
            mss=int(self.rng.choice(_MSS_CHOICES, p=_MSS_WEIGHTS)),
            use_timestamps=self.rng.random() < self.config.timestamp_probability,
            use_sack=self.rng.random() < self.config.sack_probability,
            client_wscale=int(self.rng.integers(0, 10)) if use_wscale else None,
            server_wscale=int(self.rng.integers(0, 10)) if use_wscale else None,
            client_window=int(self.rng.integers(8_192, 65_535)),
            server_window=int(self.rng.integers(8_192, 65_535)),
            client_ttl=self._pick_ttl(),
            server_ttl=self._pick_ttl(),
            base_rtt=float(self.rng.uniform(0.005, 0.12)),
        )

    def generate_connection(self, scenario_name: str | None = None) -> Connection:
        """Generate one benign connection, optionally forcing a scenario."""
        if scenario_name is None:
            scenario_name = str(self.rng.choice(self._scenario_names, p=self._scenario_probabilities))
        scenario: Scenario = self._scenarios[scenario_name]
        self._clock += float(self.rng.exponential(self.config.mean_inter_connection_gap))
        session = self._build_session(self._clock)
        scenario.build(session, self.rng)
        connection = Connection(key=FlowKey.from_packet(session.packets[0]))
        for packet in session.packets:
            connection.append(packet)
        return connection

    # --------------------------------------------------------------- corpora
    def generate_connections(
        self, count: int, scenario_name: str | None = None
    ) -> list[Connection]:
        """Generate ``count`` independent benign connections."""
        return [self.generate_connection(scenario_name) for _ in range(count)]

    def generate_packets(self, connection_count: int) -> list[Packet]:
        """Generate connections and return the interleaved packet stream."""
        packets: list[Packet] = []
        for connection in self.generate_connections(connection_count):
            packets.extend(connection.packets)
        packets.sort(key=lambda packet: packet.timestamp)
        return packets


def generate_benign_connections(count: int, seed: SeedLike = 0,
                                config: GeneratorConfig | None = None) -> list[Connection]:
    """Convenience wrapper used by tests, examples and benchmarks."""
    return TrafficGenerator(seed=seed, config=config).generate_connections(count)
