"""Vectorised SYN-flood synthesis for capacity/eviction benchmarks.

The flood workloads of Grashöfer et al. (and our Table-3 scale-out replay)
need *millions* of single-SYN flows; building that many :class:`Packet`
objects dominates the benchmark runtime before a single packet reaches the
detector.  :func:`syn_flood_columns` instead writes the flood directly into
:class:`~repro.netstack.columns.PacketColumns` arrays — one NumPy
assignment per column — producing rows that are field-for-field identical
to ``PacketColumns.from_packets`` over the equivalent bare-SYN packets
(``tests/traffic/test_flood_columns.py`` asserts this), at a rate of
millions of rows per second.

:func:`syn_flood_blocks` chunks a large flood into bounded capture blocks
so a replay can stream it through the serving layer without materialising
every row's view objects at once.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.netstack.columns import PacketColumns
from repro.netstack.ip import IPV4_BASE_HEADER_LENGTH
from repro.netstack.tcp import TCP_BASE_HEADER_LENGTH, TcpFlags

#: Distinct client source ports cycled by the flood (the usual ephemeral
#: range size, matching the object-packet flood helper in the test suite).
_PORT_SPAN = 60_000


def syn_flood_columns(
    count: int,
    *,
    start: float = 1_000.0,
    interval: float = 0.001,
    src_base: int = 0x0A000001,
    server_ip: int = 0xC0A80001,
    server_port: int = 80,
    first_index: int = 0,
) -> PacketColumns:
    """``count`` bare SYNs from distinct spoofed sources, as one block.

    Every packet opens a new flow (source addresses increment from
    ``src_base``) and none ever completes — the canonical flow-table
    capacity attack.  All scalar columns carry the well-formed defaults a
    ``Packet(ip=Ipv4Header(...), tcp=TcpHeader(..., flags=SYN))`` would
    produce: option-less 20-byte headers, valid checksums, TTL 64.

    ``first_index`` offsets the packet index the timestamps, addresses and
    sequence numbers derive from, so :func:`syn_flood_blocks` yields blocks
    bit-identical to slices of one big :func:`syn_flood_columns` call.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    n = int(count)
    index = int(first_index) + np.arange(n, dtype=np.int64)
    zeros = np.zeros(n, dtype=np.int64)

    src = src_base + index
    dst = np.full(n, server_ip, dtype=np.int64)
    src_port = 1024 + index % _PORT_SPAN
    dst_port = np.full(n, server_port, dtype=np.int64)
    # Canonical flow key: lower (ip, port) endpoint first.
    swap = (src > dst) | ((src == dst) & (src_port > dst_port))
    total_length = IPV4_BASE_HEADER_LENGTH + TCP_BASE_HEADER_LENGTH
    return PacketColumns(
        timestamp=start + index * float(interval),
        src=src,
        dst=dst,
        src_port=src_port,
        dst_port=dst_port,
        seq=index.copy(),
        ack=zeros,
        flags=np.full(n, TcpFlags.SYN, dtype=np.int64),
        window=np.full(n, 65535, dtype=np.int64),
        urgent=zeros,
        data_offset=np.full(n, TCP_BASE_HEADER_LENGTH // 4, dtype=np.int64),
        payload_len=zeros,
        ihl=np.full(n, IPV4_BASE_HEADER_LENGTH // 4, dtype=np.int64),
        version=np.full(n, 4, dtype=np.int64),
        tos=zeros,
        ttl=np.full(n, 64, dtype=np.int64),
        total_length=np.full(n, total_length, dtype=np.int64),
        ip_options=np.zeros(n, dtype=bool),
        ip_ok=np.ones(n, dtype=bool),
        tcp_ok=np.ones(n, dtype=bool),
        mss=np.zeros(n, dtype=np.float64),
        ws_shift=np.zeros(n, dtype=np.float64),
        ut_timeout=np.zeros(n, dtype=np.float64),
        md5_ok=np.ones(n, dtype=np.float64),
        ts_present=np.zeros(n, dtype=bool),
        tsval=zeros,
        tsecr=zeros,
        key_ip_a=np.where(swap, dst, src),
        key_port_a=np.where(swap, dst_port, src_port),
        key_ip_b=np.where(swap, src, dst),
        key_port_b=np.where(swap, src_port, dst_port),
    )


def syn_flood_blocks(
    count: int,
    *,
    block_rows: int = 32_768,
    start: float = 1_000.0,
    interval: float = 0.001,
    src_base: int = 0x0A000001,
    server_ip: int = 0xC0A80001,
    server_port: int = 80,
) -> Iterator[PacketColumns]:
    """The same flood as bounded capture blocks of ``block_rows`` packets.

    Blocks are yielded lazily so a million-flow replay never holds more
    than one generator-side block of arrays (plus whatever FIFO window the
    serving layer keeps) in memory at a time.
    """
    if block_rows < 1:
        raise ValueError(f"block_rows must be at least 1, got {block_rows}")
    for offset in range(0, int(count), int(block_rows)):
        rows = min(int(block_rows), int(count) - offset)
        yield syn_flood_columns(
            rows,
            start=start,
            interval=interval,
            src_base=src_base,
            server_ip=server_ip,
            server_port=server_port,
            first_index=offset,
        )


__all__ = ["syn_flood_blocks", "syn_flood_columns"]
