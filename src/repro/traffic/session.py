"""Protocol-consistent TCP session builder.

The benign corpus must be *benign*: every emitted connection has to be
accepted by the rigorous reference state machine (correct checksums,
consistent sequence/acknowledgement numbers, sane windows, monotonically
increasing TCP timestamps).  :class:`TcpSessionBuilder` encapsulates all that
bookkeeping so scenario code reads like a conversation script::

    session.client_syn()
    session.server_synack()
    session.client_ack()
    session.send(Direction.CLIENT_TO_SERVER, 220)
    ...
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.ip import Ipv4Header
from repro.netstack.options import MaximumSegmentSize, SackPermitted, Timestamp, WindowScale
from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TcpFlags, TcpHeader
from repro.tcpstate.window import seq_add


@dataclass
class _EndpointState:
    """Per-endpoint sequence bookkeeping used while scripting a session."""

    ip: int
    port: int
    isn: int
    ttl: int
    window: int
    wscale: int | None
    ts_clock: int
    ip_id: int
    snd_nxt: int = 0
    rcv_nxt: int = 0

    def __post_init__(self) -> None:
        self.snd_nxt = self.isn


class TcpSessionBuilder:
    """Script one TCP connection packet-by-packet with consistent state."""

    def __init__(
        self,
        client_ip: int,
        server_ip: int,
        client_port: int,
        server_port: int,
        *,
        start_time: float = 0.0,
        client_isn: int = 1000,
        server_isn: int = 2000,
        mss: int = 1460,
        use_timestamps: bool = True,
        use_sack: bool = True,
        client_wscale: int | None = 7,
        server_wscale: int | None = 7,
        client_window: int = 64240,
        server_window: int = 65160,
        client_ttl: int = 64,
        server_ttl: int = 64,
        base_rtt: float = 0.02,
    ) -> None:
        self.mss = mss
        self.use_timestamps = use_timestamps
        self.use_sack = use_sack
        self.base_rtt = base_rtt
        self.now = start_time
        self.packets: list[Packet] = []
        self._endpoints = {
            Direction.CLIENT_TO_SERVER: _EndpointState(
                ip=client_ip,
                port=client_port,
                isn=client_isn,
                ttl=client_ttl,
                window=client_window,
                wscale=client_wscale,
                ts_clock=100_000 + (client_isn % 50_000),
                ip_id=(client_isn * 7919) % 65536,
            ),
            Direction.SERVER_TO_CLIENT: _EndpointState(
                ip=server_ip,
                port=server_port,
                isn=server_isn,
                ttl=server_ttl,
                window=server_window,
                wscale=server_wscale,
                ts_clock=200_000 + (server_isn % 50_000),
                ip_id=(server_isn * 104729) % 65536,
            ),
        }

    # ---------------------------------------------------------------- helpers
    def _endpoint(self, direction: Direction) -> _EndpointState:
        return self._endpoints[direction]

    def _peer(self, direction: Direction) -> _EndpointState:
        return self._endpoints[direction.flipped()]

    def advance_time(self, seconds: float) -> None:
        """Move the session clock forward (packet timestamps and TS options)."""
        self.now += max(seconds, 0.0)

    def elapse_rtt(self, fraction: float = 0.5) -> None:
        """Advance the clock by a fraction of the base round-trip time."""
        self.advance_time(self.base_rtt * fraction)

    def _timestamp_option(self, direction: Direction) -> Timestamp | None:
        if not self.use_timestamps:
            return None
        endpoint = self._endpoint(direction)
        peer = self._peer(direction)
        tsval = endpoint.ts_clock + int(self.now * 1000)
        tsecr = peer.ts_clock + int(self.now * 1000) if self.packets else 0
        return Timestamp(tsval=tsval, tsecr=tsecr if len(self.packets) > 0 else 0)

    def _emit(
        self,
        direction: Direction,
        flags: int,
        payload: bytes,
        *,
        seq: int | None = None,
        ack: int | None = None,
        options: list[object] | None = None,
        window: int | None = None,
        advance_seq: bool = True,
        ttl: int | None = None,
    ) -> Packet:
        endpoint = self._endpoint(direction)
        peer = self._peer(direction)
        seq_value = endpoint.snd_nxt if seq is None else seq
        ack_value = endpoint.rcv_nxt if ack is None else ack
        packet = Packet(
            ip=Ipv4Header(
                src=endpoint.ip,
                dst=peer.ip,
                identification=endpoint.ip_id,
                ttl=ttl if ttl is not None else endpoint.ttl,
            ),
            tcp=TcpHeader(
                src_port=endpoint.port,
                dst_port=peer.port,
                seq=seq_value,
                ack=ack_value if flags & TcpFlags.ACK else 0,
                flags=flags,
                window=window if window is not None else endpoint.window,
                options=list(options) if options else [],
            ),
            payload=payload,
            timestamp=self.now,
            direction=direction,
        )
        endpoint.ip_id = (endpoint.ip_id + 1) % 65536
        span = len(payload)
        if flags & TcpFlags.SYN:
            span += 1
        if flags & TcpFlags.FIN:
            span += 1
        if advance_seq and seq is None:
            endpoint.snd_nxt = seq_add(endpoint.snd_nxt, span)
            peer.rcv_nxt = endpoint.snd_nxt
        self.packets.append(packet)
        return packet

    # ------------------------------------------------------------- handshake
    def client_syn(self) -> Packet:
        """The connection-opening SYN with MSS/WScale/SACK/TS options."""
        direction = Direction.CLIENT_TO_SERVER
        endpoint = self._endpoint(direction)
        options: list[object] = [MaximumSegmentSize(self.mss)]
        if endpoint.wscale is not None:
            options.append(WindowScale(endpoint.wscale))
        if self.use_sack:
            options.append(SackPermitted())
        ts = self._timestamp_option(direction)
        if ts is not None:
            options.append(Timestamp(tsval=ts.tsval, tsecr=0))
        return self._emit(direction, TcpFlags.SYN, b"", options=options)

    def server_synack(self) -> Packet:
        """The server's SYN-ACK mirroring the client's options."""
        self.elapse_rtt()
        direction = Direction.SERVER_TO_CLIENT
        endpoint = self._endpoint(direction)
        options: list[object] = [MaximumSegmentSize(self.mss)]
        if endpoint.wscale is not None:
            options.append(WindowScale(endpoint.wscale))
        if self.use_sack:
            options.append(SackPermitted())
        ts = self._timestamp_option(direction)
        if ts is not None:
            options.append(ts)
        return self._emit(direction, TcpFlags.SYN | TcpFlags.ACK, b"", options=options)

    def client_ack(self) -> Packet:
        """The final ACK of the three-way handshake."""
        self.elapse_rtt()
        return self.ack(Direction.CLIENT_TO_SERVER)

    def handshake(self) -> list[Packet]:
        """Convenience: full three-way handshake."""
        return [self.client_syn(), self.server_synack(), self.client_ack()]

    # ------------------------------------------------------------------ data
    def send(
        self,
        direction: Direction,
        payload_length: int,
        *,
        push: bool = True,
        advance: float | None = None,
    ) -> list[Packet]:
        """Send ``payload_length`` bytes split into MSS-sized segments."""
        if advance is not None:
            self.advance_time(advance)
        else:
            self.elapse_rtt(0.25)
        packets: list[Packet] = []
        remaining = payload_length
        while remaining > 0 or not packets:
            chunk = min(remaining, self.mss) if remaining > 0 else 0
            flags = TcpFlags.ACK
            if push and (remaining - chunk) <= 0:
                flags |= TcpFlags.PSH
            options: list[object] = []
            ts = self._timestamp_option(direction)
            if ts is not None:
                options.append(ts)
            packets.append(self._emit(direction, flags, b"\x00" * chunk, options=options))
            remaining -= chunk
            if remaining > 0:
                self.advance_time(0.0002)
        return packets

    def ack(self, direction: Direction, *, window: int | None = None) -> Packet:
        """A bare acknowledgement from ``direction``."""
        options: list[object] = []
        ts = self._timestamp_option(direction)
        if ts is not None:
            options.append(ts)
        return self._emit(direction, TcpFlags.ACK, b"", options=options, window=window)

    def retransmit_last_data(self, direction: Direction) -> Packet | None:
        """Re-send the most recent data segment from ``direction`` (benign loss)."""
        for packet in reversed(self.packets):
            if packet.direction is direction and len(packet.payload) > 0:
                self.elapse_rtt(2.0)
                options: list[object] = []
                ts = self._timestamp_option(direction)
                if ts is not None:
                    options.append(ts)
                return self._emit(
                    direction,
                    packet.tcp.flags,
                    packet.payload,
                    seq=packet.tcp.seq,
                    ack=self._endpoint(direction).rcv_nxt,
                    options=options,
                    advance_seq=False,
                )
        return None

    def keepalive(self, direction: Direction) -> Packet:
        """A keep-alive probe: zero-length ACK with seq one below snd_nxt."""
        endpoint = self._endpoint(direction)
        options: list[object] = []
        ts = self._timestamp_option(direction)
        if ts is not None:
            options.append(ts)
        self.advance_time(1.0)
        return self._emit(
            direction,
            TcpFlags.ACK,
            b"",
            seq=seq_add(endpoint.snd_nxt, -1),
            options=options,
            advance_seq=False,
        )

    # --------------------------------------------------------------- teardown
    def fin(self, direction: Direction) -> Packet:
        """Send a FIN-ACK from ``direction``."""
        self.elapse_rtt(0.5)
        options: list[object] = []
        ts = self._timestamp_option(direction)
        if ts is not None:
            options.append(ts)
        return self._emit(direction, TcpFlags.FIN | TcpFlags.ACK, b"", options=options)

    def rst(self, direction: Direction, *, with_ack: bool = False) -> Packet:
        """Send a RST (optionally RST-ACK) from ``direction``."""
        self.elapse_rtt(0.5)
        flags = TcpFlags.RST | (TcpFlags.ACK if with_ack else 0)
        return self._emit(direction, flags, b"")

    def graceful_close(self, initiator: Direction = Direction.CLIENT_TO_SERVER) -> list[Packet]:
        """Standard four-way close initiated by ``initiator``."""
        other = initiator.flipped()
        packets = [self.fin(initiator)]
        self.elapse_rtt()
        packets.append(self.ack(other))
        packets.append(self.fin(other))
        self.elapse_rtt()
        packets.append(self.ack(initiator))
        return packets
