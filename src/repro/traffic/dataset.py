"""Corpus/dataset management (the MAWI-like dataset of Section 4.1).

A :class:`BenignDataset` owns a set of benign connections, splits them into
training and testing partitions and reports the Table-4 style statistics.  It
can be built synthetically (default) or loaded from any pcap capture, so the
pipeline also works on real traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.netstack.flow import Connection, assemble_connections, split_connections
from repro.netstack.pcap import read_pcap, write_pcap
from repro.traffic.generator import GeneratorConfig, TrafficGenerator
from repro.utils.rng import SeedLike, ensure_rng


@dataclass(frozen=True)
class DatasetStatistics:
    """The quantities reported in Table 4 of the paper."""

    total_packets: int
    total_connections: int
    training_packets: int
    training_connections: int
    testing_packets: int
    testing_connections: int

    def as_rows(self) -> list[tuple]:
        """Rows suitable for printing a Table-4 style summary."""
        return [
            ("# TCP/IPv4 Packets", self.total_packets),
            ("# TCP/IPv4 Connections", self.total_connections),
            ("# TCP/IPv4 Packets (Training)", self.training_packets),
            ("# TCP/IPv4 Connections (Training)", self.training_connections),
            ("# TCP/IPv4 Packets (Testing)", self.testing_packets),
            ("# TCP/IPv4 Connections (Testing)", self.testing_connections),
        ]


class BenignDataset:
    """A benign-traffic corpus with a train/test split."""

    def __init__(self, train: list[Connection], test: list[Connection]) -> None:
        self.train = train
        self.test = test

    # ------------------------------------------------------------ constructors
    @classmethod
    def synthesize(
        cls,
        connection_count: int = 400,
        *,
        train_fraction: float = 0.83,
        seed: SeedLike = 0,
        config: GeneratorConfig | None = None,
    ) -> "BenignDataset":
        """Generate a synthetic corpus mirroring the paper's 83/17 split."""
        rng = ensure_rng(seed)
        generator = TrafficGenerator(seed=rng, config=config)
        connections = generator.generate_connections(connection_count)
        train, test = split_connections(connections, train_fraction, rng)
        return cls(train=train, test=test)

    @classmethod
    def from_pcap(
        cls,
        path: str | Path,
        *,
        train_fraction: float = 0.83,
        seed: SeedLike = 0,
        min_connection_length: int = 3,
    ) -> "BenignDataset":
        """Load connections from a capture file and split train/test."""
        rng = ensure_rng(seed)
        packets = read_pcap(path)
        connections = [
            connection
            for connection in assemble_connections(packets)
            if len(connection) >= min_connection_length
        ]
        if not connections:
            raise ValueError(f"no usable TCP connections found in {path}")
        train, test = split_connections(connections, train_fraction, rng)
        return cls(train=train, test=test)

    # ----------------------------------------------------------------- export
    def save(self, directory: str | Path) -> dict[str, Path]:
        """Write ``train.pcap`` / ``test.pcap`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        paths = {
            "train": directory / "train.pcap",
            "test": directory / "test.pcap",
        }
        write_pcap(paths["train"], (p for c in self.train for p in c.packets))
        write_pcap(paths["test"], (p for c in self.test for p in c.packets))
        return paths

    # ------------------------------------------------------------- statistics
    @staticmethod
    def _packet_count(connections: list[Connection]) -> int:
        return sum(len(connection) for connection in connections)

    def statistics(self) -> DatasetStatistics:
        """Table-4 style statistics for this corpus."""
        training_packets = self._packet_count(self.train)
        testing_packets = self._packet_count(self.test)
        return DatasetStatistics(
            total_packets=training_packets + testing_packets,
            total_connections=len(self.train) + len(self.test),
            training_packets=training_packets,
            training_connections=len(self.train),
            testing_packets=testing_packets,
            testing_connections=len(self.test),
        )

    def scenario_coverage(self) -> dict[str, int]:
        """Rough scenario histogram inferred from connection shape (debugging aid)."""
        histogram: dict[str, int] = {"with_handshake": 0, "reset": 0, "fin_closed": 0, "other": 0}
        for connection in self.train + self.test:
            if any(p.tcp.is_rst for p in connection.packets):
                histogram["reset"] += 1
            elif any(p.tcp.is_fin for p in connection.packets):
                histogram["fin_closed"] += 1
            elif connection.has_handshake:
                histogram["with_handshake"] += 1
            else:
                histogram["other"] += 1
        return histogram
