"""Benign traffic generation and dataset management (MAWI substitute)."""

from repro.traffic.dataset import BenignDataset, DatasetStatistics
from repro.traffic.generator import GeneratorConfig, TrafficGenerator, generate_benign_connections
from repro.traffic.scenarios import Scenario, get_scenario, registry, scenario_names
from repro.traffic.session import TcpSessionBuilder

__all__ = [
    "BenignDataset",
    "DatasetStatistics",
    "GeneratorConfig",
    "Scenario",
    "TcpSessionBuilder",
    "TrafficGenerator",
    "generate_benign_connections",
    "get_scenario",
    "registry",
    "scenario_names",
]
