"""CLAP configuration (the hyper-parameters of Table 6).

The defaults follow the paper exactly where that is practical on a laptop-scale
corpus (model sizes, stack length, scoring window) and expose the training
budget (epochs, corpus size) as knobs because the paper's 1,000-epoch /
448k-packet training run is a cluster-scale job.  Every experiment records the
configuration it used, so EXPERIMENTS.md can state the deviation explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.features.schema import HIDDEN_SIZE, NUM_RAW_FEATURES
from repro.tcpstate.states import NUM_LABEL_CLASSES


@dataclass
class RnnConfig:
    """Stage (a): the GRU state-prediction model."""

    input_size: int = NUM_RAW_FEATURES  # 32 (Table 6)
    hidden_size: int = HIDDEN_SIZE  # 32, also the gate size (Table 6)
    num_classes: int = NUM_LABEL_CLASSES  # 22 states
    num_layers: int = 1
    epochs: int = 30  # Table 6
    batch_size: int = 32
    learning_rate: float = 0.005
    gradient_clip: float = 5.0
    seed: int = 7
    #: Registered sequence-backend name (see :mod:`repro.nn.backend`).  A
    #: non-trainable backend (e.g. ``quantized-gru``) is produced by training
    #: its ``training_backend`` and converting after Stage-(a) training, so
    #: the autoencoder and threshold calibrate on the serving-path gates.
    backend: str = "gru"


@dataclass
class AutoencoderConfig:
    """Stage (c): the context-profile autoencoder."""

    depth: int = 7  # number of layers (Table 6)
    bottleneck_size: int = 40  # Table 6
    epochs: int = 120  # paper uses 1,000; reduced for laptop-scale corpora
    batch_size: int = 64
    learning_rate: float = 0.001
    hidden_activation: str = "tanh"
    seed: int = 11


@dataclass
class DetectorConfig:
    """Stage (d): scoring and localisation."""

    stack_length: int = 3  # context profiles per stacked profile (Table 6)
    score_window: int = 5  # "localize-and-estimate" averaging window
    include_gate_weights: bool = True
    include_amplification: bool = True


@dataclass
class ClapConfig:
    """Full CLAP configuration."""

    rnn: RnnConfig = field(default_factory=RnnConfig)
    autoencoder: AutoencoderConfig = field(default_factory=AutoencoderConfig)
    detector: DetectorConfig = field(default_factory=DetectorConfig)

    @classmethod
    def paper(cls) -> "ClapConfig":
        """The configuration as printed in Table 6 (1,000 autoencoder epochs)."""
        config = cls()
        config.autoencoder.epochs = 1000
        return config

    @classmethod
    def fast(cls) -> "ClapConfig":
        """A reduced configuration for unit tests and CI."""
        config = cls()
        config.rnn.epochs = 6
        config.autoencoder.epochs = 25
        return config

    def describe(self) -> dict:
        """Flat description used by the Table-6 benchmark dump."""
        return {
            "rnn.layers": self.rnn.num_layers,
            "rnn.input_size": self.rnn.input_size,
            "rnn.hidden_size": self.rnn.hidden_size,
            "rnn.num_classes": self.rnn.num_classes,
            "rnn.epochs": self.rnn.epochs,
            "rnn.backend": self.rnn.backend,
            "autoencoder.layers": self.autoencoder.depth,
            "autoencoder.bottleneck": self.autoencoder.bottleneck_size,
            "autoencoder.epochs": self.autoencoder.epochs,
            "detector.stack_length": self.detector.stack_length,
            "detector.score_window": self.detector.score_window,
        }
