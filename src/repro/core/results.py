"""The unified Stage-(d) result type returned by the detection API.

Historically every entry point returned a different shape — ``score_connections``
a float array, ``verdict_batch`` a list of :class:`ConnectionVerdict` (which
drags the full per-window error array along), ``localize_batch`` nested lists of
packet indices.  :class:`DetectionResult` unifies them: one small, frozen,
JSON-friendly record per connection that carries everything a deployment needs
to act on (score, decision, localisation, identity), and nothing it does not.

``Clap.detect`` / ``Clap.detect_batch`` return these directly; the streaming
subsystem (:mod:`repro.serve`) wraps them in :class:`~repro.serve.DetectionEvent`
envelopes, and the CLI serialises them as JSON/NDJSON.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netstack.addresses import ip_to_int
from repro.netstack.flow import FlowKey


def _parse_flow_key(rendered: str) -> FlowKey:
    """Invert ``str(FlowKey)`` (``"a.b.c.d:p <-> a.b.c.d:p"``)."""
    left, _, right = rendered.partition(" <-> ")
    if not right:
        raise ValueError(f"malformed connection string: {rendered!r}")
    ip_a, _, port_a = left.rpartition(":")
    ip_b, _, port_b = right.rpartition(":")
    return FlowKey(
        ip_a=ip_to_int(ip_a),
        port_a=int(port_a),
        ip_b=ip_to_int(ip_b),
        port_b=int(port_b),
    )


@dataclass(frozen=True)
class DetectionResult:
    """Everything the detection API reports about one scored connection.

    Attributes
    ----------
    key:
        Canonical bidirectional 5-tuple of the connection (``None`` when the
        caller scored a connection that was never given a key).
    score:
        The localize-and-estimate adversarial score (higher = more suspicious).
    threshold:
        The decision threshold the verdict was taken against.
    is_adversarial:
        ``score > threshold``.
    localized_window:
        Index of the stacked-profile window with the maximum reconstruction
        error (-1 when the connection produced no windows).
    localized_packets:
        Packet indices implied by the highest-error windows, most suspicious
        first (empty when nothing could be localised).
    packet_count:
        Number of packets in the scored connection.
    degraded:
        ``True`` when the connection was scored by a survivor instance after
        its home instance was lost mid-stream (partitioned serving's
        ``degrade`` failure policy) — the score may not be identical to an
        unfaulted run and deployments should weigh it accordingly.
    """

    key: FlowKey | None
    score: float
    threshold: float
    is_adversarial: bool
    localized_window: int
    localized_packets: tuple[int, ...]
    packet_count: int
    degraded: bool = False

    @property
    def localized_packet(self) -> int:
        """The single most suspicious packet index (-1 when unavailable)."""
        return self.localized_packets[0] if self.localized_packets else -1

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable rendering (used by ``score --json`` / ``stream``)."""
        return {
            "connection": str(self.key) if self.key is not None else None,
            "score": self.score,
            "threshold": self.threshold,
            "adversarial": self.is_adversarial,
            "localized_window": self.localized_window,
            "localized_packets": list(self.localized_packets),
            "packet_count": self.packet_count,
            "degraded": self.degraded,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "DetectionResult":
        """Inverse of :meth:`to_dict`, exact for every field.

        Scores survive the round trip bit-for-bit because Python's JSON
        float encoding is shortest-repr: ``float(json.dumps(x)) == x``.
        The partitioned serving layer relies on this to merge remote
        instances' events with single-instance-identical scores.
        """
        connection = payload["connection"]
        return cls(
            key=_parse_flow_key(str(connection)) if connection is not None else None,
            score=float(payload["score"]),  # type: ignore[arg-type]
            threshold=float(payload["threshold"]),  # type: ignore[arg-type]
            is_adversarial=bool(payload["adversarial"]),
            localized_window=int(payload["localized_window"]),  # type: ignore[call-overload]
            localized_packets=tuple(
                int(index) for index in payload["localized_packets"]  # type: ignore[union-attr]
            ),
            packet_count=int(payload["packet_count"]),  # type: ignore[call-overload]
            degraded=bool(payload.get("degraded", False)),
        )
