"""Stage (a): learning the inter-packet context.

A GRU-based sequence classifier is trained to predict, for each packet of a
benign connection, the reference connection state (master TCP state plus
in-/out-of-window verdict, 22 classes).  The classifier itself is a means to
an end: after training, its per-packet gate activations encode how much each
prediction depends on the preceding packets — the inter-packet context that is
fused into the context profiles in Stage (b).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.core.config import RnnConfig
from repro.features.fields import RawFeatureExtractor
from repro.features.scaling import FeatureScaler
from repro.netstack.flow import Connection
from repro.nn.backend import convert_backend, get_backend
from repro.nn.gru import GRUSequenceClassifier
from repro.tcpstate.conntrack import ConnectionLabeler
from repro.tcpstate.states import NUM_LABEL_CLASSES, label_names
from repro.utils.rng import ensure_rng


@dataclass
class SequenceBatch:
    """A padded batch of per-connection feature sequences and labels."""

    inputs: np.ndarray  # (batch, time, features)
    targets: np.ndarray  # (batch, time)
    mask: np.ndarray  # (batch, time), 1.0 for real packets


@dataclass
class RnnTrainingReport:
    """Summary of a Stage-(a) training run."""

    epochs: int
    final_loss: float
    loss_history: list[float]
    training_accuracy: float


def pad_sequences(
    feature_arrays: Sequence[np.ndarray], label_arrays: Sequence[np.ndarray]
) -> SequenceBatch:
    """Zero-pad variable-length sequences into one batch with a mask."""
    batch = len(feature_arrays)
    max_time = max((array.shape[0] for array in feature_arrays), default=1)
    width = feature_arrays[0].shape[1] if feature_arrays else 0
    inputs = np.zeros((batch, max_time, width), dtype=np.float64)
    targets = np.zeros((batch, max_time), dtype=np.int64)
    mask = np.zeros((batch, max_time), dtype=np.float64)
    for row, (features, labels) in enumerate(zip(feature_arrays, label_arrays, strict=True)):
        length = features.shape[0]
        inputs[row, :length] = features
        targets[row, :length] = labels
        mask[row, :length] = 1.0
    return SequenceBatch(inputs=inputs, targets=targets, mask=mask)


class RnnStage:
    """Train and evaluate the Stage-(a) GRU on labelled benign connections."""

    def __init__(self, config: RnnConfig | None = None) -> None:
        self.config = config or RnnConfig()
        self.extractor = RawFeatureExtractor()
        self.labeler = ConnectionLabeler()
        self.scaler: FeatureScaler | None = None
        self.model: GRUSequenceClassifier | None = None
        self.report: RnnTrainingReport | None = None

    # ----------------------------------------------------------- preparation
    def prepare(
        self, connections: Sequence[Connection]
    ) -> tuple[list[np.ndarray], list[np.ndarray]]:
        """Raw features and label indices per connection (labels via conntrack)."""
        feature_arrays: list[np.ndarray] = []
        label_arrays: list[np.ndarray] = []
        for connection in connections:
            if len(connection) == 0:
                continue
            features = self.extractor.extract_connection(connection)
            labels = np.array(self.labeler.label_class_indices(connection.packets), dtype=np.int64)
            feature_arrays.append(features)
            label_arrays.append(labels)
        return feature_arrays, label_arrays

    # -------------------------------------------------------------- training
    def _training_class(self):
        """The trainable backend class behind ``config.backend``.

        Serving-only identities train their designated ``training_backend``
        (e.g. ``quantized-gru`` trains a ``gru`` and converts afterwards); the
        ``gru-f32`` serving variant likewise trains the float64 ``gru``.
        """
        name = self.config.backend
        if name == "gru-f32":
            name = "gru"
        backend_cls = get_backend(name)
        if not backend_cls.trainable:
            backend_cls = get_backend(backend_cls.training_backend)
        return backend_cls

    def fit(self, connections: Sequence[Connection], *, verbose: bool = False) -> RnnTrainingReport:
        """Train the GRU classifier on benign ``connections``."""
        feature_arrays, label_arrays = self.prepare(connections)
        if not feature_arrays:
            raise ValueError("cannot train the RNN stage on an empty corpus")
        self.scaler = FeatureScaler.fit(feature_arrays)
        scaled_arrays = self.scaler.transform_all(feature_arrays)

        self.model = self._training_class()(
            input_size=self.config.input_size,
            hidden_size=self.config.hidden_size,
            num_classes=self.config.num_classes,
            seed=self.config.seed,
            learning_rate=self.config.learning_rate,
            gradient_clip=self.config.gradient_clip,
        )
        rng = ensure_rng(self.config.seed)
        order = np.arange(len(scaled_arrays))
        loss_history: list[float] = []
        for epoch in range(self.config.epochs):
            rng.shuffle(order)
            epoch_losses: list[float] = []
            for start in range(0, len(order), self.config.batch_size):
                chosen = order[start : start + self.config.batch_size]
                batch = pad_sequences(
                    [scaled_arrays[i] for i in chosen], [label_arrays[i] for i in chosen]
                )
                epoch_losses.append(self.model.train_batch(batch.inputs, batch.targets, batch.mask))
            loss_history.append(float(np.mean(epoch_losses)))
            if verbose:
                print(f"rnn epoch {epoch + 1}/{self.config.epochs}: loss={loss_history[-1]:.4f}")

        # Convert to the requested serving backend *before* evaluation, so
        # the reported accuracy — and everything downstream (autoencoder
        # training, threshold calibration) — sees the serving-path gates.
        if self.config.backend != self.model.backend_name:
            self.model = convert_backend(self.model, self.config.backend)

        accuracy = self.evaluate(connections)
        self.report = RnnTrainingReport(
            epochs=self.config.epochs,
            final_loss=loss_history[-1],
            loss_history=loss_history,
            training_accuracy=accuracy,
        )
        return self.report

    # ------------------------------------------------------------ evaluation
    def evaluate(self, connections: Sequence[Connection]) -> float:
        """Overall per-packet state-prediction accuracy."""
        correct, total = self._count_correct(connections)
        return correct / total if total else 0.0

    def per_label_accuracy(self, connections: Sequence[Connection]) -> dict[str, tuple[float, int]]:
        """Accuracy and sample count per label name (the Table-5 breakdown)."""
        if self.model is None or self.scaler is None:
            raise RuntimeError("RnnStage.fit must be called before evaluation")
        names = label_names()
        counts = np.zeros(NUM_LABEL_CLASSES, dtype=np.int64)
        hits = np.zeros(NUM_LABEL_CLASSES, dtype=np.int64)
        for connection in connections:
            if len(connection) == 0:
                continue
            features = self.scaler.transform(self.extractor.extract_connection(connection))
            labels = np.array(self.labeler.label_class_indices(connection.packets), dtype=np.int64)
            predictions = self.model.predict_classes(features[None, :, :])[0]
            for label, prediction in zip(labels, predictions, strict=True):
                counts[label] += 1
                hits[label] += int(label == prediction)
        return {
            names[index]: (float(hits[index] / counts[index]) if counts[index] else float("nan"), int(counts[index]))
            for index in range(NUM_LABEL_CLASSES)
        }

    def _count_correct(self, connections: Sequence[Connection]) -> tuple[int, int]:
        if self.model is None or self.scaler is None:
            raise RuntimeError("RnnStage.fit must be called before evaluation")
        correct = 0
        total = 0
        for connection in connections:
            if len(connection) == 0:
                continue
            features = self.scaler.transform(self.extractor.extract_connection(connection))
            labels = np.array(self.labeler.label_class_indices(connection.packets), dtype=np.int64)
            predictions = self.model.predict_classes(features[None, :, :])[0]
            correct += int(np.sum(predictions[: labels.size] == labels))
            total += labels.size
        return correct, total
