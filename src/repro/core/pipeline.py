"""The end-to-end CLAP pipeline (Figures 2 and 3 of the paper).

Training phase (:meth:`Clap.fit`):

(a) train the GRU state classifier on benign connections labelled by the
    reference conntrack implementation;
(b) fuse packet features (raw + amplification) with the GRU gate activations
    into context profiles, stacked over a sliding window;
(c) train the autoencoder on the benign stacked profiles.

Testing phase (:meth:`Clap.score_connection` / :meth:`Clap.verdict`):

(d) compute per-window reconstruction errors for an unseen connection,
    summarise them with the localize-and-estimate adversarial score, compare
    against a threshold and, if desired, localise the most suspicious packet.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Sequence

import numpy as np

from repro.core.artifacts import (
    ModelManifestError,
    backend_from_manifest,
    config_from_manifest,
    read_manifest,
    validate_manifest,
    write_manifest,
)
from repro.core.config import ClapConfig
from repro.core.detector import (
    ConnectionVerdict,
    Verdicts,
    adversarial_score,
    localize_window,
    localized_packets,
    window_center_packet,
)
from repro.core.engine import BatchInferenceEngine
from repro.core.results import DetectionResult
from repro.core.rnn_stage import RnnStage, RnnTrainingReport
from repro.features.amplification import FeatureRanges
from repro.features.profile import ContextProfileBuilder
from repro.features.scaling import FeatureScaler
from repro.netstack.flow import Connection
from repro.nn.autoencoder import Autoencoder
from repro.nn.backend import backend_from_state_dict, convert_backend, serving_backend_name
from repro.nn.gru import GRUSequenceClassifier
from repro.nn.serialization import load_state, save_state
from repro.utils.rng import ensure_rng


@dataclass
class ClapTrainingReport:
    """Summary of a full CLAP training run."""

    rnn: RnnTrainingReport | None
    autoencoder_loss_history: list[float]
    profile_size: int
    stacked_profile_size: int
    training_profiles: int
    threshold: float


class Clap:
    """Context Learning based Adversarial Protection.

    ``include_gate_weights=False`` together with ``stack_length=1`` in the
    detector configuration turns this pipeline into the paper's Baseline #1
    (no RNN is trained in that case); the dedicated constructor lives in
    :mod:`repro.baselines.intra_only`.
    """

    def __init__(self, config: ClapConfig | None = None) -> None:
        self.config = config or ClapConfig()
        self.rnn_stage: RnnStage | None = None
        self.autoencoder: Autoencoder | None = None
        self.builder: ContextProfileBuilder | None = None
        self.threshold: float = 0.0
        self.report: ClapTrainingReport | None = None
        self._engine: BatchInferenceEngine | None = None

    # -------------------------------------------------------------- training
    def fit(
        self,
        train_connections: Sequence[Connection],
        *,
        verbose: bool = False,
        threshold_percentile: float = 95.0,
    ) -> ClapTrainingReport:
        """Train the full pipeline on benign connections only."""
        self._engine = None
        detector_config = self.config.detector
        rnn_report: RnnTrainingReport | None = None
        rnn_model: GRUSequenceClassifier | None = None

        if detector_config.include_gate_weights:
            self.rnn_stage = RnnStage(self.config.rnn)
            rnn_report = self.rnn_stage.fit(train_connections, verbose=verbose)
            rnn_model = self.rnn_stage.model
            scaler = self.rnn_stage.scaler
            raw_arrays, _ = self.rnn_stage.prepare(train_connections)
        else:
            stage = RnnStage(self.config.rnn)
            raw_arrays, _ = stage.prepare(train_connections)
            scaler = FeatureScaler.fit(raw_arrays)

        ranges = FeatureRanges.fit(raw_arrays)
        self.builder = ContextProfileBuilder(
            rnn_model,
            scaler,
            ranges,
            stack_length=detector_config.stack_length,
            include_gate_weights=detector_config.include_gate_weights,
            include_amplification=detector_config.include_amplification,
        )

        training_matrix = self.builder.training_matrix(train_connections)
        autoencoder_config = self.config.autoencoder
        self.autoencoder = Autoencoder(
            input_size=self.builder.stacked_profile_size,
            bottleneck_size=autoencoder_config.bottleneck_size,
            depth=autoencoder_config.depth,
            hidden_activation=autoencoder_config.hidden_activation,
            learning_rate=autoencoder_config.learning_rate,
            seed=autoencoder_config.seed,
        )
        loss_history = self.autoencoder.fit(
            training_matrix,
            epochs=autoencoder_config.epochs,
            batch_size=autoencoder_config.batch_size,
            rng=ensure_rng(autoencoder_config.seed),
            verbose=verbose,
        )

        self.threshold = self._calibrate_threshold(train_connections, threshold_percentile)
        self.report = ClapTrainingReport(
            rnn=rnn_report,
            autoencoder_loss_history=loss_history,
            profile_size=self.builder.profile_size,
            stacked_profile_size=self.builder.stacked_profile_size,
            training_profiles=training_matrix.shape[0],
            threshold=self.threshold,
        )
        return self.report

    def _calibrate_threshold(
        self, connections: Sequence[Connection], percentile: float
    ) -> float:
        """Default decision threshold: a high percentile of benign scores.

        The paper leaves the threshold to the deployer; this calibration gives
        example scripts and the online-detector example a sensible default.
        """
        scores = self.score_connections(connections)
        if scores.size == 0:
            return 0.0
        return float(np.percentile(scores, percentile))

    # --------------------------------------------------------------- scoring
    def _require_fitted(self) -> None:
        if self.autoencoder is None or self.builder is None:
            raise RuntimeError("Clap.fit (or Clap.load) must be called before scoring")

    # ---------------------------------------------------------------- backend
    @property
    def backend_name(self) -> str:
        """Persisted identity of the Stage-(a) sequence backend.

        This is the name recorded in ``manifest.json`` / ``rnn/meta/backend``
        when the pipeline is saved; the serving-only ``gru-f32`` variant
        reports its persisted identity ``gru`` here (see
        :meth:`serving_backend` for the effective one).  Pipelines without a
        sequence model (Baseline #1) report the default ``gru``.
        """
        rnn = self.builder.rnn if self.builder is not None else None
        if rnn is None and self.rnn_stage is not None:
            rnn = self.rnn_stage.model
        return getattr(rnn, "backend_name", "gru") if rnn is not None else "gru"

    @property
    def serving_backend(self) -> str:
        """The effective serving identity (``gru-f32`` when computing in f32)."""
        rnn = self.builder.rnn if self.builder is not None else None
        return serving_backend_name(rnn) if rnn is not None else "gru"

    def with_backend(self, name: str) -> "Clap":
        """This pipeline served through sequence backend ``name``.

        Returns ``self`` when the pipeline already serves ``name``; otherwise
        a new :class:`Clap` sharing the fitted autoencoder, scaler, ranges
        and threshold, with only the Stage-(a) model converted (see
        :func:`repro.nn.backend.convert_backend`).  Conversion never mutates
        the source pipeline.
        """
        self._require_fitted()
        if self.builder.rnn is None:
            raise RuntimeError(
                "this pipeline has no sequence model (include_gate_weights=False); "
                "there is no backend to convert"
            )
        if name == self.serving_backend:
            return self
        converted = convert_backend(self.builder.rnn, name)
        clone = Clap(copy.deepcopy(self.config))
        clone.config.rnn.backend = name
        clone.builder = ContextProfileBuilder(
            converted,
            self.builder.scaler,
            self.builder.ranges,
            stack_length=self.config.detector.stack_length,
            include_gate_weights=self.config.detector.include_gate_weights,
            include_amplification=self.config.detector.include_amplification,
        )
        clone.autoencoder = self.autoencoder
        clone.threshold = self.threshold
        clone.report = self.report
        return clone

    @property
    def engine(self) -> BatchInferenceEngine:
        """The batched inference engine over the fitted builder/autoencoder.

        Built lazily after :meth:`fit`/:meth:`load`; every multi-connection
        entry point (:meth:`score_connections`, :meth:`verdict_batch`,
        :meth:`localize_batch`, :meth:`window_error_segments`) routes through
        it.  The single-connection methods keep the original sequential code
        path, which doubles as the reference implementation the engine is
        tested against.
        """
        self._require_fitted()
        if self._engine is None:
            self._engine = BatchInferenceEngine(
                self.builder, self.autoencoder, self.config.detector
            )
        return self._engine

    def window_errors(self, connection: Connection) -> np.ndarray:
        """Per-sliding-window reconstruction errors for one connection."""
        self._require_fitted()
        stacked = self.builder.stacked_profiles(connection)
        if stacked.shape[0] == 0:
            return np.zeros(0)
        return self.autoencoder.reconstruction_error(stacked)

    def window_error_segments(self, connections: Sequence[Connection]) -> list[np.ndarray]:
        """Per-connection window errors for many connections (batched)."""
        return self.engine.window_error_segments(connections)

    def score_connection(self, connection: Connection) -> float:
        """The adversarial score of one connection (higher = more suspicious)."""
        return adversarial_score(
            self.window_errors(connection), self.config.detector.score_window
        )

    def score_connections(self, connections: Sequence[Connection]) -> np.ndarray:
        """Adversarial scores for many connections, via the batched engine."""
        return self.engine.scores(connections)

    def score_connections_sequential(self, connections: Sequence[Connection]) -> np.ndarray:
        """Reference per-connection scoring loop (the seed implementation).

        Kept as the ground truth for the batch-equivalence tests and as the
        per-connection contender in the throughput benchmark.
        """
        return np.array([self.score_connection(connection) for connection in connections])

    def verdict(self, connection: Connection, threshold: float | None = None) -> ConnectionVerdict:
        """Full Stage-(d) output: score, boolean decision and localisation."""
        self._require_fitted()
        errors = self.window_errors(connection)
        verdicts = Verdicts(
            stack_length=self.config.detector.stack_length,
            score_window=self.config.detector.score_window,
            threshold=self.threshold if threshold is None else threshold,
        )
        return verdicts.verdict(errors, packet_count=len(connection))

    def verdict_batch(
        self, connections: Sequence[Connection], threshold: float | None = None
    ) -> list[ConnectionVerdict]:
        """Stage-(d) verdicts for many connections in one engine pass."""
        return self.engine.verdicts(
            connections, self.threshold if threshold is None else threshold
        )

    # ----------------------------------------------------- unified detection
    def detect(
        self,
        connection: Connection,
        *,
        threshold: float | None = None,
        top_n: int = 1,
    ) -> DetectionResult:
        """Unified Stage-(d) result for one connection (sequential reference).

        This is the single-connection reference implementation of the
        detection API; :meth:`detect_batch` must match it to within 1e-9.
        """
        self._require_fitted()
        limit = self.threshold if threshold is None else threshold
        errors = self.window_errors(connection)
        detector_config = self.config.detector
        score = adversarial_score(errors, detector_config.score_window)
        window_index = localize_window(errors)
        if top_n == 1:
            center = window_center_packet(
                window_index, detector_config.stack_length, len(connection)
            )
            packets = (center,) if center >= 0 else ()
        else:
            packets = tuple(
                localized_packets(
                    errors,
                    stack_length=detector_config.stack_length,
                    packet_count=len(connection),
                    top_n=top_n,
                )
            )
        return DetectionResult(
            key=connection.key,
            score=score,
            threshold=float(limit),
            is_adversarial=score > limit,
            localized_window=window_index,
            localized_packets=packets,
            packet_count=len(connection),
        )

    def detect_batch(
        self,
        connections: Sequence[Connection],
        *,
        threshold: float | None = None,
        top_n: int = 1,
    ) -> list[DetectionResult]:
        """Unified Stage-(d) results for many connections in one engine pass."""
        limit = self.threshold if threshold is None else threshold
        return self.engine.detect(connections, limit, top_n=top_n)

    def localize(self, connection: Connection, top_n: int = 1) -> list[int]:
        """Packet indices of the ``top_n`` most suspicious positions."""
        errors = self.window_errors(connection)
        return localized_packets(
            errors,
            stack_length=self.config.detector.stack_length,
            packet_count=len(connection),
            top_n=top_n,
        )

    def localize_batch(
        self, connections: Sequence[Connection], top_n: int = 1
    ) -> list[list[int]]:
        """Per-connection localisations for many connections in one engine pass."""
        return self.engine.localize(connections, top_n=top_n)

    def is_adversarial(self, connection: Connection, threshold: float | None = None) -> bool:
        """Boolean detection decision for one connection."""
        limit = self.threshold if threshold is None else threshold
        return self.score_connection(connection) > limit

    # ------------------------------------------------------------ persistence
    def save(self, directory: str | Path) -> Path:
        """Persist the trained pipeline as a versioned model artifact.

        The weights/scaler/threshold land in ``clap_model.npz`` as before; a
        ``manifest.json`` (artifact schema version, full configuration,
        feature-schema hash, threshold) is written alongside so the artifact
        is self-describing and :meth:`load` can validate compatibility.  The
        archive members are stored uncompressed, so :meth:`load` can
        memory-map them (``mmap_mode="r"``) — many readers of one artifact
        then share a single page-cache copy of the weights.
        """
        self._require_fitted()
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        state: dict[str, np.ndarray] = {}
        if self.builder.rnn is not None:
            for key, value in self.builder.rnn.state_dict().items():
                state[f"rnn/{key}"] = value
        for key, value in self.autoencoder.state_dict().items():
            state[f"ae/{key}"] = value
        for key, value in self.builder.scaler.to_arrays().items():
            state[f"scaler/{key}"] = value
        for key, value in self.builder.ranges.to_arrays().items():
            state[f"ranges/{key}"] = value
        state["detector/threshold"] = np.array([self.threshold])
        state["detector/stack_length"] = np.array([self.config.detector.stack_length])
        state["detector/score_window"] = np.array([self.config.detector.score_window])
        state["detector/include_gate_weights"] = np.array(
            [1 if self.config.detector.include_gate_weights else 0]
        )
        state["detector/include_amplification"] = np.array(
            [1 if self.config.detector.include_amplification else 0]
        )
        archive = save_state(directory / "clap_model", state)
        write_manifest(directory, self.config, self.threshold, backend=self.backend_name)
        return archive

    @classmethod
    def load(
        cls,
        path: str | Path,
        config: ClapConfig | None = None,
        *,
        mmap_mode: str | None = None,
    ) -> "Clap":
        """Load a pipeline persisted with :meth:`save`.

        When a ``manifest.json`` sits next to the archive it is validated
        (artifact schema version, feature-schema hash) and, unless the caller
        supplies an explicit ``config``, the recorded training configuration
        is restored.  Legacy bare ``.npz`` models (no manifest) load as
        before.  Raises :class:`repro.core.artifacts.ModelManifestError` for
        incompatible artifacts.

        ``mmap_mode="r"`` memory-maps the weight arrays read-only instead of
        copying them into process memory (see
        :func:`repro.nn.serialization.load_state`): scoring is byte-identical
        to an eager load, and every process mapping the same artifact shares
        one page-cache copy — the loading mode the process-backed streaming
        runtime uses for its shard workers.
        """
        path = Path(path)
        if path.is_dir():
            path = path / "clap_model.npz"
        state = load_state(path, mmap_mode=mmap_mode)
        manifest = read_manifest(path.parent)
        if manifest is not None:
            validate_manifest(manifest)
            if config is None:
                config = config_from_manifest(manifest)
        # Deep-copy so the persisted detector settings never leak back into
        # the caller's configuration object.
        config = copy.deepcopy(config) if config is not None else ClapConfig()
        config.detector.stack_length = int(state["detector/stack_length"][0])
        config.detector.score_window = int(state["detector/score_window"][0])
        config.detector.include_gate_weights = bool(int(state["detector/include_gate_weights"][0]))
        config.detector.include_amplification = bool(int(state["detector/include_amplification"][0]))
        instance = cls(config)

        rnn_state = {
            key[len("rnn/") :]: value for key, value in state.items() if key.startswith("rnn/")
        }
        # The backend identity embedded in the archive (``rnn/meta/backend``)
        # is authoritative — it dispatches reconstruction through the backend
        # registry.  The manifest's ``sequence_backend`` field is the
        # human-readable copy; legacy states (no meta key) load as ``gru``.
        rnn_model = backend_from_state_dict(rnn_state) if rnn_state else None
        if manifest is not None and rnn_model is not None:
            recorded = backend_from_manifest(manifest)
            if recorded != rnn_model.backend_name:
                raise ModelManifestError(
                    f"manifest names sequence backend {recorded!r} but the archive "
                    f"holds {rnn_model.backend_name!r} weights"
                )
        if (
            rnn_model is not None
            and config.rnn.backend not in ("", rnn_model.backend_name)
            and config.rnn.backend == "gru-f32"
            and rnn_model.backend_name == "gru"
        ):
            # A converted pipeline saved with a serving override (e.g.
            # ``gru-f32``) restores that override on load.
            rnn_model = convert_backend(rnn_model, "gru-f32")
        ae_state = {key[len("ae/") :]: value for key, value in state.items() if key.startswith("ae/")}
        scaler = FeatureScaler.from_arrays(
            {key[len("scaler/") :]: value for key, value in state.items() if key.startswith("scaler/")}
        )
        ranges = FeatureRanges.from_arrays(
            {key[len("ranges/") :]: value for key, value in state.items() if key.startswith("ranges/")}
        )
        instance.builder = ContextProfileBuilder(
            rnn_model,
            scaler,
            ranges,
            stack_length=config.detector.stack_length,
            include_gate_weights=config.detector.include_gate_weights,
            include_amplification=config.detector.include_amplification,
        )
        instance.autoencoder = Autoencoder.from_state_dict(ae_state)
        instance.threshold = float(state["detector/threshold"][0])
        return instance
