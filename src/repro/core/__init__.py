"""CLAP core: configuration, training stages, detection and localisation."""

from repro.core.artifacts import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA_VERSION,
    ModelManifestError,
    feature_schema_hash,
)
from repro.core.config import AutoencoderConfig, ClapConfig, DetectorConfig, RnnConfig
from repro.core.detector import (
    ConnectionVerdict,
    Verdicts,
    adversarial_score,
    adversarial_score_batch,
    localization_hit,
    localize_window,
    localize_window_batch,
    localized_packets,
    window_center_packet,
    window_center_packet_batch,
)
from repro.core.engine import BatchInferenceEngine
from repro.core.pipeline import Clap, ClapTrainingReport
from repro.core.results import DetectionResult
from repro.core.rnn_stage import RnnStage, RnnTrainingReport, SequenceBatch, pad_sequences

__all__ = [
    "AutoencoderConfig",
    "BatchInferenceEngine",
    "Clap",
    "ClapConfig",
    "ClapTrainingReport",
    "ConnectionVerdict",
    "DetectionResult",
    "DetectorConfig",
    "MANIFEST_FILENAME",
    "MANIFEST_SCHEMA_VERSION",
    "ModelManifestError",
    "RnnConfig",
    "feature_schema_hash",
    "RnnStage",
    "RnnTrainingReport",
    "SequenceBatch",
    "Verdicts",
    "adversarial_score",
    "adversarial_score_batch",
    "localization_hit",
    "localize_window",
    "localize_window_batch",
    "localized_packets",
    "pad_sequences",
    "window_center_packet",
    "window_center_packet_batch",
]
