"""Versioned model artifacts: the ``manifest.json`` written next to the weights.

A persisted CLAP model used to be a bare ``clap_model.npz`` — loadable, but
silent about *what* it is: which configuration trained it, which feature
schema its profiles assume, which package version wrote it.  The manifest
makes the artifact self-describing and lets :meth:`repro.core.pipeline.Clap.load`
fail loudly (instead of scoring garbage) when a model was trained against an
incompatible feature layout or a newer artifact schema.

Layout of ``manifest.json`` (schema version 2)::

    {
      "format": "clap-model",
      "schema_version": 2,
      "repro_version": "1.0.0",
      "feature_schema_hash": "<sha256 over the Table-7 feature specs>",
      "threshold": 0.0123,
      "sequence_backend": "gru",
      "config": {"rnn": {...}, "autoencoder": {...}, "detector": {...}}
    }

Schema version 2 added ``sequence_backend`` — the registered name of the
Stage-(a) model implementation that produced the persisted weights (see
:mod:`repro.nn.backend`).  Version-1 manifests (no such field) load as the
default ``gru`` backend; the authoritative copy of the backend identity also
lives inside the archive (``rnn/meta/backend``), so even legacy bare ``.npz``
models (no manifest next to them) remain loadable.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

from repro.core.config import AutoencoderConfig, ClapConfig, DetectorConfig, RnnConfig
from repro.features.schema import all_feature_specs
from repro.version import __version__

MANIFEST_FILENAME = "manifest.json"
MANIFEST_FORMAT = "clap-model"
MANIFEST_SCHEMA_VERSION = 2
DEFAULT_SEQUENCE_BACKEND = "gru"


class ModelManifestError(ValueError):
    """A model manifest is present but invalid or incompatible."""


def feature_schema_hash() -> str:
    """SHA-256 fingerprint of the full Table-7 context-profile schema.

    Any change to the feature set (order, names, types, amplification
    indicators) changes this hash, which invalidates persisted models whose
    profile layout no longer matches the code.
    """
    lines = [
        f"{spec.index}|{spec.name}|{spec.feature_type.value}|{spec.group.value}|{int(spec.numeric)}"
        for spec in all_feature_specs()
    ]
    return hashlib.sha256("\n".join(lines).encode("utf-8")).hexdigest()


def build_manifest(
    config: ClapConfig,
    threshold: float,
    *,
    backend: str = DEFAULT_SEQUENCE_BACKEND,
) -> dict[str, object]:
    """The manifest dictionary for a trained pipeline."""
    return {
        "format": MANIFEST_FORMAT,
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "repro_version": __version__,
        "feature_schema_hash": feature_schema_hash(),
        "threshold": float(threshold),
        "sequence_backend": str(backend),
        "config": dataclasses.asdict(config),
    }


def write_manifest(
    directory: str | Path,
    config: ClapConfig,
    threshold: float,
    *,
    backend: str = DEFAULT_SEQUENCE_BACKEND,
) -> Path:
    """Write ``manifest.json`` into ``directory`` and return its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / MANIFEST_FILENAME
    path.write_text(
        json.dumps(build_manifest(config, threshold, backend=backend), indent=2) + "\n"
    )
    return path


def read_manifest(directory: str | Path) -> dict[str, object] | None:
    """The parsed manifest found in ``directory``, or ``None`` for legacy models."""
    path = Path(directory) / MANIFEST_FILENAME
    if not path.exists():
        return None
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise ModelManifestError(f"unreadable model manifest {path}: {error}") from error
    if not isinstance(manifest, dict):
        raise ModelManifestError(f"model manifest {path} is not a JSON object")
    return manifest


def validate_manifest(manifest: dict[str, object]) -> None:
    """Raise :class:`ModelManifestError` unless this build can load ``manifest``."""
    format_name = manifest.get("format", MANIFEST_FORMAT)
    if format_name != MANIFEST_FORMAT:
        raise ModelManifestError(f"not a CLAP model manifest (format={format_name!r})")
    version = manifest.get("schema_version")
    if not isinstance(version, int) or version < 1:
        raise ModelManifestError(f"invalid manifest schema_version {version!r}")
    if version > MANIFEST_SCHEMA_VERSION:
        raise ModelManifestError(
            f"model manifest schema_version {version} is newer than the supported "
            f"{MANIFEST_SCHEMA_VERSION}; upgrade the repro package to load this model"
        )
    recorded_hash = manifest.get("feature_schema_hash")
    if recorded_hash is not None and recorded_hash != feature_schema_hash():
        raise ModelManifestError(
            "model was trained against a different feature schema "
            f"(manifest hash {str(recorded_hash)[:12]}…, current {feature_schema_hash()[:12]}…); "
            "retrain the model against the current Table-7 layout"
        )


def backend_from_manifest(manifest: dict[str, object]) -> str:
    """The sequence-backend name a manifest records.

    Schema-version-1 manifests predate pluggable backends and always mean the
    default ``gru``.
    """
    backend = manifest.get("sequence_backend", DEFAULT_SEQUENCE_BACKEND)
    if not isinstance(backend, str) or not backend:
        raise ModelManifestError(f"invalid manifest sequence_backend {backend!r}")
    return backend


def _dataclass_from(cls, data: object):
    """Build a config dataclass from a manifest dict, ignoring unknown keys."""
    if not isinstance(data, dict):
        raise ModelManifestError(f"manifest config section for {cls.__name__} is not an object")
    known = {field.name for field in dataclasses.fields(cls)}
    return cls(**{key: value for key, value in data.items() if key in known})


def config_from_manifest(manifest: dict[str, object]) -> ClapConfig:
    """Reconstruct the full :class:`ClapConfig` recorded in a manifest."""
    config = manifest.get("config")
    if not isinstance(config, dict):
        raise ModelManifestError("model manifest carries no config section")
    return ClapConfig(
        rnn=_dataclass_from(RnnConfig, config.get("rnn", {})),
        autoencoder=_dataclass_from(AutoencoderConfig, config.get("autoencoder", {})),
        detector=_dataclass_from(DetectorConfig, config.get("detector", {})),
    )
