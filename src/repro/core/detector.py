"""Stage (d): scoring, detection and localisation.

Given the per-window reconstruction errors of a connection (produced by the
Stage-(c) autoencoder over the sliding stacked profiles), this module computes:

* the **adversarial score** via the paper's "localize-and-estimate" approach —
  locate the window with the maximum reconstruction error, then average the
  errors over a ``score_window``-wide neighbourhood centred there;
* the **localisation** of the most suspicious packet(s) — the packet position
  implied by the highest-error window; and
* the boolean **detection** decision given a deployer-chosen threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class ConnectionVerdict:
    """Everything Stage (d) reports about one connection."""

    adversarial_score: float
    window_errors: np.ndarray
    localized_window: int
    localized_packet: int
    is_adversarial: bool


def adversarial_score(window_errors: np.ndarray, score_window: int = 5) -> float:
    """The localize-and-estimate score of a sequence of reconstruction errors.

    The window with the maximum error is located, and the mean error over the
    ``score_window`` profiles centred on it (clipped to the sequence bounds) is
    returned.  For empty inputs the score is 0.0.
    """
    if window_errors.size == 0:
        return 0.0
    center = int(np.argmax(window_errors))
    half = max(score_window // 2, 0)
    # Keep the averaging window a constant width whenever the sequence allows
    # it: near the boundaries the window is shifted inwards rather than
    # truncated, so connections whose maximum falls on the first or last
    # profile are scored on the same footing as the others.
    width = min(score_window, window_errors.size)
    start = min(max(center - half, 0), window_errors.size - width)
    stop = start + width
    return float(np.mean(window_errors[start:stop]))


def localize_window(window_errors: np.ndarray) -> int:
    """Index of the stacked-profile window with the maximum error (-1 if empty)."""
    if window_errors.size == 0:
        return -1
    return int(np.argmax(window_errors))


def window_center_packet(window_index: int, stack_length: int, packet_count: int) -> int:
    """Map a stacked-window index to its most representative packet index.

    A stacked window starting at packet ``i`` covers packets ``i .. i+stack-1``;
    its centre packet is the natural single-packet localisation.
    """
    if window_index < 0 or packet_count == 0:
        return -1
    center = window_index + stack_length // 2
    return min(center, packet_count - 1)


def localized_packets(
    window_errors: np.ndarray, stack_length: int, packet_count: int, top_n: int = 1
) -> List[int]:
    """Packet indices implied by the ``top_n`` highest-error windows."""
    if window_errors.size == 0 or packet_count == 0:
        return []
    order = np.argsort(window_errors)[::-1][:top_n]
    packets = []
    for window_index in order:
        packet = window_center_packet(int(window_index), stack_length, packet_count)
        if packet not in packets:
            packets.append(packet)
    return packets


def localization_hit(
    window_errors: np.ndarray,
    injected_indices: Sequence[int],
    *,
    stack_length: int,
    packet_count: int,
    tolerance_window: int = 5,
) -> bool:
    """Top-N hit criterion of the paper's localisation evaluation.

    The single localised packet (centre of the maximum-error window) counts as
    a hit when a truly injected/modified packet lies within a
    ``tolerance_window``-packet window centred on it: Top-5 means within two
    packets either side, Top-3 within one, Top-1 exact.
    """
    if not injected_indices:
        return False
    window_index = localize_window(window_errors)
    packet = window_center_packet(window_index, stack_length, packet_count)
    if packet < 0:
        return False
    half = max((tolerance_window - 1) // 2, 0)
    return any(abs(packet - int(index)) <= half for index in injected_indices)


class Verdicts:
    """Helper producing :class:`ConnectionVerdict` objects from errors."""

    def __init__(self, stack_length: int, score_window: int, threshold: float) -> None:
        self.stack_length = stack_length
        self.score_window = score_window
        self.threshold = threshold

    def verdict(self, window_errors: np.ndarray, packet_count: int) -> ConnectionVerdict:
        score = adversarial_score(window_errors, self.score_window)
        window_index = localize_window(window_errors)
        packet = window_center_packet(window_index, self.stack_length, packet_count)
        return ConnectionVerdict(
            adversarial_score=score,
            window_errors=window_errors,
            localized_window=window_index,
            localized_packet=packet,
            is_adversarial=score > self.threshold,
        )
