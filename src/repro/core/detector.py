"""Stage (d): scoring, detection and localisation.

Given the per-window reconstruction errors of a connection (produced by the
Stage-(c) autoencoder over the sliding stacked profiles), this module computes:

* the **adversarial score** via the paper's "localize-and-estimate" approach —
  locate the window with the maximum reconstruction error, then average the
  errors over a ``score_window``-wide neighbourhood centred there;
* the **localisation** of the most suspicious packet(s) — the packet position
  implied by the highest-error window; and
* the boolean **detection** decision given a deployer-chosen threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np


@dataclass(frozen=True)
class ConnectionVerdict:
    """Everything Stage (d) reports about one connection."""

    adversarial_score: float
    window_errors: np.ndarray
    localized_window: int
    localized_packet: int
    is_adversarial: bool


def adversarial_score(window_errors: np.ndarray, score_window: int = 5) -> float:
    """The localize-and-estimate score of a sequence of reconstruction errors.

    The window with the maximum error is located, and the mean error over the
    ``score_window`` profiles centred on it (clipped to the sequence bounds) is
    returned.  For empty inputs the score is 0.0.
    """
    if window_errors.size == 0:
        return 0.0
    center = int(np.argmax(window_errors))
    half = max(score_window // 2, 0)
    # Keep the averaging window a constant width whenever the sequence allows
    # it: near the boundaries the window is shifted inwards rather than
    # truncated, so connections whose maximum falls on the first or last
    # profile are scored on the same footing as the others.
    width = min(score_window, window_errors.size)
    start = min(max(center - half, 0), window_errors.size - width)
    stop = start + width
    return float(np.mean(window_errors[start:stop]))


def localize_window(window_errors: np.ndarray) -> int:
    """Index of the stacked-profile window with the maximum error (-1 if empty)."""
    if window_errors.size == 0:
        return -1
    return int(np.argmax(window_errors))


# ---------------------------------------------------------------------------
# Batched (segment-wise) variants used by the batched inference engine.
#
# ``errors`` concatenates the per-window reconstruction errors of many
# connections; ``offsets`` (length ``n_connections + 1``) delimits connection
# ``i`` as ``errors[offsets[i] : offsets[i + 1]]``.  All functions are
# vectorized over the segments — no Python loop over connections.
# ---------------------------------------------------------------------------


def _checked_offsets(errors: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.ndim != 1 or offsets.size == 0:
        raise ValueError("offsets must be a 1-D array of length n_connections + 1")
    if offsets[0] != 0 or offsets[-1] != errors.size:
        raise ValueError(
            f"offsets must span the error array: got [{offsets[0]}, {offsets[-1]}] "
            f"for {errors.size} errors"
        )
    if np.any(np.diff(offsets) < 0):
        raise ValueError("offsets must be non-decreasing")
    return offsets


def _segment_first_argmax(
    errors: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> np.ndarray:
    """First-occurrence argmax of each non-empty segment, relative to its start."""
    segment_max = np.maximum.reduceat(errors, starts)
    element_max = np.repeat(segment_max, lengths)
    candidates = np.where(errors == element_max, np.arange(errors.size), errors.size)
    return np.minimum.reduceat(candidates, starts) - starts


def localize_window_batch(errors: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment :func:`localize_window`: argmax window index, -1 for empty."""
    errors = np.asarray(errors, dtype=np.float64)
    offsets = _checked_offsets(errors, offsets)
    counts = np.diff(offsets)
    result = np.full(counts.shape[0], -1, dtype=np.int64)
    nonempty = counts > 0
    if np.any(nonempty):
        result[nonempty] = _segment_first_argmax(
            errors, offsets[:-1][nonempty], counts[nonempty]
        )
    return result


def adversarial_score_batch(
    errors: np.ndarray, offsets: np.ndarray, score_window: int = 5
) -> np.ndarray:
    """Per-segment :func:`adversarial_score`, fully vectorized.

    Each segment's maximum-error window is located with segmented reductions
    (``np.maximum.reduceat`` / ``np.minimum.reduceat``), and the
    ``score_window``-wide neighbourhood means are computed with one gather.
    Empty segments score 0.0, matching the scalar function.
    """
    errors = np.asarray(errors, dtype=np.float64)
    offsets = _checked_offsets(errors, offsets)
    counts = np.diff(offsets)
    scores = np.zeros(counts.shape[0], dtype=np.float64)
    nonempty = counts > 0
    if not np.any(nonempty):
        return scores
    starts = offsets[:-1][nonempty]
    lengths = counts[nonempty]
    centers = _segment_first_argmax(errors, starts, lengths)
    half = max(score_window // 2, 0)
    widths = np.minimum(score_window, lengths)
    relative_starts = np.minimum(np.maximum(centers - half, 0), lengths - widths)
    absolute_starts = starts + relative_starts
    span = int(widths.max())
    gather = absolute_starts[:, None] + np.arange(span)[None, :]
    valid = np.arange(span)[None, :] < widths[:, None]
    values = errors[np.minimum(gather, errors.size - 1)]
    scores[nonempty] = np.where(valid, values, 0.0).sum(axis=1) / widths
    return scores


def window_center_packet_batch(
    window_indices: np.ndarray, stack_length: int, packet_counts: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`window_center_packet` over many connections."""
    window_indices = np.asarray(window_indices, dtype=np.int64)
    packet_counts = np.asarray(packet_counts, dtype=np.int64)
    packets = np.minimum(window_indices + stack_length // 2, packet_counts - 1)
    packets[(window_indices < 0) | (packet_counts == 0)] = -1
    return packets


def window_center_packet(window_index: int, stack_length: int, packet_count: int) -> int:
    """Map a stacked-window index to its most representative packet index.

    A stacked window starting at packet ``i`` covers packets ``i .. i+stack-1``;
    its centre packet is the natural single-packet localisation.
    """
    if window_index < 0 or packet_count == 0:
        return -1
    center = window_index + stack_length // 2
    return min(center, packet_count - 1)


def localized_packets(
    window_errors: np.ndarray, stack_length: int, packet_count: int, top_n: int = 1
) -> list[int]:
    """Packet indices implied by the ``top_n`` highest-error windows."""
    if window_errors.size == 0 or packet_count == 0:
        return []
    order = np.argsort(window_errors)[::-1][:top_n]
    packets = []
    for window_index in order:
        packet = window_center_packet(int(window_index), stack_length, packet_count)
        if packet not in packets:
            packets.append(packet)
    return packets


def localization_hit(
    window_errors: np.ndarray,
    injected_indices: Sequence[int],
    *,
    stack_length: int,
    packet_count: int,
    tolerance_window: int = 5,
) -> bool:
    """Top-N hit criterion of the paper's localisation evaluation.

    The single localised packet (centre of the maximum-error window) counts as
    a hit when a truly injected/modified packet lies within a
    ``tolerance_window``-packet window centred on it: Top-5 means within two
    packets either side, Top-3 within one, Top-1 exact.
    """
    if not injected_indices:
        return False
    window_index = localize_window(window_errors)
    packet = window_center_packet(window_index, stack_length, packet_count)
    if packet < 0:
        return False
    half = max((tolerance_window - 1) // 2, 0)
    return any(abs(packet - int(index)) <= half for index in injected_indices)


class Verdicts:
    """Helper producing :class:`ConnectionVerdict` objects from errors."""

    def __init__(self, stack_length: int, score_window: int, threshold: float) -> None:
        self.stack_length = stack_length
        self.score_window = score_window
        self.threshold = threshold

    def verdict(self, window_errors: np.ndarray, packet_count: int) -> ConnectionVerdict:
        score = adversarial_score(window_errors, self.score_window)
        window_index = localize_window(window_errors)
        packet = window_center_packet(window_index, self.stack_length, packet_count)
        return ConnectionVerdict(
            adversarial_score=score,
            window_errors=window_errors,
            localized_window=window_index,
            localized_packet=packet,
            is_adversarial=score > self.threshold,
        )

    def verdict_batch(
        self, errors: np.ndarray, offsets: np.ndarray, packet_counts: Sequence[int]
    ) -> list[ConnectionVerdict]:
        """Segment-wise verdicts over concatenated per-window errors.

        Scores, localisations and decisions are computed for all segments with
        the vectorized batch functions; only the final per-connection verdict
        objects are materialised in a Python loop.
        """
        errors = np.asarray(errors, dtype=np.float64)
        scores = adversarial_score_batch(errors, offsets, self.score_window)
        windows = localize_window_batch(errors, offsets)
        packets = window_center_packet_batch(windows, self.stack_length, packet_counts)
        flagged = scores > self.threshold
        return [
            ConnectionVerdict(
                adversarial_score=float(scores[index]),
                # Copy so each verdict owns its errors: a view would pin the
                # whole batch's concatenated array for the lifetime of any one
                # retained verdict (and alias writes across connections).
                window_errors=errors[offsets[index] : offsets[index + 1]].copy(),
                localized_window=int(windows[index]),
                localized_packet=int(packets[index]),
                is_adversarial=bool(flagged[index]),
            )
            for index in range(scores.shape[0])
        ]
