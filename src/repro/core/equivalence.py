"""Equivalence-tolerance gates for alternative sequence backends.

The float64 ``gru`` backend is the oracle: its fused packed loop is
bit-identical to the seed implementation, so its adversarial scores define
ground truth.  A reduced-precision serving path (``gru-f32``,
``quantized-gru``) is admissible only if, on a scoring corpus,

1. every adversarial score stays within ``atol + rtol * |reference|`` of the
   oracle score, and
2. every verdict (score vs. threshold) matches the oracle's — except for
   connections whose oracle score sits within that same tolerance band of the
   threshold, where a flip is the unavoidable consequence of the permitted
   score perturbation rather than a behavioural divergence.

:func:`assert_backend_equivalence` fails loudly (with the worst offenders in
the message) when either condition is violated; the CI ``backend-smoke`` job
and ``tests/core/test_backend_equivalence.py`` run it over the full
73-scenario adversarial corpus.

The shipped tolerances are measured, not aspirational: on the 73-scenario
corpus the float32 path lands ~1e-8 relative and the int8 path ~1e-3
relative of the float64 scores (see the values documented on
:data:`FLOAT32_TOLERANCE` / :data:`INT8_TOLERANCE`); the gates sit an order
of magnitude above the observed deltas so they trip on regressions, not on
benign jitter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

__all__ = [
    "EquivalenceTolerance",
    "FLOAT32_TOLERANCE",
    "INT8_TOLERANCE",
    "tolerance_for",
    "EquivalenceReport",
    "BackendEquivalenceError",
    "score_equivalence_report",
    "backend_equivalence_report",
    "assert_backend_equivalence",
]


@dataclass(frozen=True)
class EquivalenceTolerance:
    """Admissible deviation of a candidate score from the oracle score."""

    atol: float
    rtol: float
    name: str = "custom"

    def bound(self, reference: np.ndarray) -> np.ndarray:
        """The per-score admissible absolute deviation."""
        return self.atol + self.rtol * np.abs(reference)


#: float32 serving path: observed max relative delta ~3e-8 on the
#: 73-scenario corpus (gate-level perturbation ~6e-8 per step).
FLOAT32_TOLERANCE = EquivalenceTolerance(atol=1e-9, rtol=1e-5, name="gru-f32")

#: int8 weight quantization: observed max relative score delta ~2e-3 on the
#: 73-scenario corpus (per-gate symmetric scales, float32 accumulation).
INT8_TOLERANCE = EquivalenceTolerance(atol=1e-4, rtol=5e-2, name="quantized-gru")

_NAMED = {
    "gru": EquivalenceTolerance(atol=0.0, rtol=0.0, name="gru"),
    "gru-f32": FLOAT32_TOLERANCE,
    "quantized-gru": INT8_TOLERANCE,
}


def tolerance_for(backend: str) -> EquivalenceTolerance:
    """The documented tolerance gate for a serving backend name."""
    try:
        return _NAMED[backend]
    except KeyError:
        raise KeyError(
            f"no documented equivalence tolerance for backend {backend!r}; "
            f"known: {', '.join(sorted(_NAMED))}"
        ) from None


class BackendEquivalenceError(AssertionError):
    """A candidate backend violated its equivalence-tolerance gate."""


@dataclass
class EquivalenceReport:
    """Outcome of comparing candidate scores against oracle scores."""

    tolerance: EquivalenceTolerance
    count: int
    max_abs_delta: float
    max_excess: float  # max(|delta| - bound); <= 0 when all scores pass
    score_violations: list[int] = field(default_factory=list)
    verdict_flips: list[int] = field(default_factory=list)  # outside the band
    band_flips: list[int] = field(default_factory=list)  # inside the band (allowed)

    @property
    def passed(self) -> bool:
        return not self.score_violations and not self.verdict_flips

    def summary(self) -> str:
        return (
            f"{self.tolerance.name}: {self.count} connections, "
            f"max |Δscore|={self.max_abs_delta:.3e}, "
            f"score violations={len(self.score_violations)}, "
            f"verdict flips={len(self.verdict_flips)} "
            f"(+{len(self.band_flips)} inside the tolerance band)"
        )


def score_equivalence_report(
    reference_scores: np.ndarray,
    candidate_scores: np.ndarray,
    *,
    tolerance: EquivalenceTolerance,
    threshold: float | None = None,
) -> EquivalenceReport:
    """Compare score vectors under ``tolerance`` (and verdicts, if thresholded)."""
    reference_scores = np.asarray(reference_scores, dtype=np.float64)
    candidate_scores = np.asarray(candidate_scores, dtype=np.float64)
    if reference_scores.shape != candidate_scores.shape:
        raise ValueError(
            f"score vectors differ in shape: {reference_scores.shape} vs "
            f"{candidate_scores.shape}"
        )
    delta = np.abs(candidate_scores - reference_scores)
    bound = tolerance.bound(reference_scores)
    excess = delta - bound
    violations = np.flatnonzero(excess > 0)

    flips: list[int] = []
    band_flips: list[int] = []
    if threshold is not None:
        ref_verdicts = reference_scores > threshold
        cand_verdicts = candidate_scores > threshold
        for index in np.flatnonzero(ref_verdicts != cand_verdicts):
            # A flip is admissible only when the oracle score sits within the
            # tolerance band of the threshold: there the permitted score
            # perturbation can legitimately cross the decision boundary.
            if abs(reference_scores[index] - threshold) <= bound[index]:
                band_flips.append(int(index))
            else:
                flips.append(int(index))

    return EquivalenceReport(
        tolerance=tolerance,
        count=int(reference_scores.size),
        max_abs_delta=float(delta.max()) if delta.size else 0.0,
        max_excess=float(excess.max()) if excess.size else 0.0,
        score_violations=[int(i) for i in violations],
        verdict_flips=flips,
        band_flips=band_flips,
    )


def backend_equivalence_report(
    reference,
    candidate,
    connections: Sequence,
    *,
    tolerance: EquivalenceTolerance,
    threshold: float | None = None,
) -> EquivalenceReport:
    """Score ``connections`` through both pipelines and compare.

    ``reference``/``candidate`` are fitted :class:`repro.core.pipeline.Clap`
    instances (typically ``candidate = reference.with_backend(name)``).  The
    verdict check uses the reference pipeline's calibrated threshold unless
    one is given.
    """
    if threshold is None:
        threshold = getattr(reference, "threshold", None)
    reference_scores = reference.score_connections(connections)
    candidate_scores = candidate.score_connections(connections)
    return score_equivalence_report(
        reference_scores, candidate_scores, tolerance=tolerance, threshold=threshold
    )


def assert_backend_equivalence(
    reference,
    candidate,
    connections: Sequence,
    *,
    tolerance: EquivalenceTolerance,
    threshold: float | None = None,
) -> EquivalenceReport:
    """:func:`backend_equivalence_report`, raising loudly on gate violations."""
    report = backend_equivalence_report(
        reference, candidate, connections, tolerance=tolerance, threshold=threshold
    )
    if not report.passed:
        detail = [report.summary()]
        for index in report.score_violations[:5]:
            detail.append(f"  score violation at connection {index}")
        for index in report.verdict_flips[:5]:
            detail.append(f"  verdict flip at connection {index} (outside tolerance band)")
        raise BackendEquivalenceError("\n".join(detail))
    return report
