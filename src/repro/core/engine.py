"""Batched inference engine: the vectorized testing-phase hot path.

The seed implementation scored connections one at a time: every connection
rebuilt its context profiles, ran its own GRU forward pass and its own
autoencoder call.  On laptop-scale corpora that is dominated by Python and
tiny-matmul overhead, which is exactly what the paper's throughput claim
(Table 3) says CLAP avoids relative to the per-instance ensemble baseline.

:class:`BatchInferenceEngine` restores that property end-to-end:

1. profiles for the whole batch are built in one pass
   (:meth:`~repro.features.profile.ContextProfileBuilder.batch_stacked_profiles`),
   with the GRU gate activations coming from padded, masked batch forwards;
2. one autoencoder call scores the concatenated stacked-profile matrix
   (chunked to bound peak memory);
3. the per-window errors are split back per connection via offsets, and the
   Stage-(d) score/localisation/decision functions run segment-wise over all
   connections at once (:func:`~repro.core.detector.adversarial_score_batch`).

At inference time results are numerically equivalent to the per-connection
path (see ``tests/core/test_batched_engine.py``).  Training also routes its
profile matrix through the batched GRU, whose padded-batch matmuls round
differently at the 1e-15 level than per-sequence ones — retrained models (and
thus benchmark metrics) can therefore drift in the last decimals relative to
the seed, while any *given* trained model scores identically either way.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.config import DetectorConfig
from repro.core.detector import (
    ConnectionVerdict,
    Verdicts,
    adversarial_score_batch,
    localize_window_batch,
    localized_packets,
    window_center_packet_batch,
)
from repro.core.results import DetectionResult
from repro.features.profile import ContextProfileBuilder, StackedProfileBatch
from repro.netstack.flow import Connection
from repro.nn.autoencoder import Autoencoder


class BatchInferenceEngine:
    """Score many connections through profile building, the autoencoder and
    Stage (d) in a few large NumPy operations.

    The engine is stateless apart from references to the fitted profile
    builder and autoencoder, so one engine can serve concurrent callers and a
    :class:`~repro.core.pipeline.Clap` instance can rebuild it cheaply after
    re-training.
    """

    def __init__(
        self,
        builder: ContextProfileBuilder,
        autoencoder: Autoencoder,
        detector_config: DetectorConfig,
        *,
        error_chunk_rows: int = 512,
        connection_chunk: int = 512,
    ) -> None:
        self.builder = builder
        self.autoencoder = autoencoder
        self.detector_config = detector_config
        # ``error_chunk_rows`` keeps each autoencoder call's activations in
        # cache; ``connection_chunk`` bounds the peak size of the concatenated
        # profile matrices, so arbitrarily large batches score in bounded
        # memory (the seed's per-connection loop used megabytes; one
        # monolithic pass over ~100k connections would not).
        self.error_chunk_rows = max(int(error_chunk_rows), 1)
        self.connection_chunk = max(int(connection_chunk), 1)

    # ------------------------------------------------------------- internals
    def _reconstruction_errors(self, matrix: np.ndarray) -> np.ndarray:
        """Autoencoder errors for a stacked-profile matrix, chunked by rows."""
        rows = matrix.shape[0]
        if rows == 0:
            return np.zeros(0, dtype=np.float64)
        if rows <= self.error_chunk_rows:
            return self.autoencoder.reconstruction_error(matrix)
        parts = [
            self.autoencoder.reconstruction_error(matrix[start : start + self.error_chunk_rows])
            for start in range(0, rows, self.error_chunk_rows)
        ]
        return np.concatenate(parts)

    # --------------------------------------------------------------- scoring
    def stacked_profiles(self, connections: Sequence[Connection]) -> StackedProfileBatch:
        """Stage-(b) output for the whole batch (profiles, offsets, counts)."""
        return self.builder.batch_stacked_profiles(connections)

    def window_errors(
        self, connections: Sequence[Connection]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated per-window errors, window offsets and packet counts.

        Inputs larger than ``connection_chunk`` are processed in slices —
        connections are independent, so the concatenated result is identical
        while peak memory stays proportional to the chunk, not the batch.
        """
        total = len(connections)
        if total <= self.connection_chunk:
            batch = self.stacked_profiles(connections)
            errors = self._reconstruction_errors(batch.matrix)
            return errors, batch.offsets, batch.packet_counts
        error_parts = []
        offset_parts = [np.zeros(1, dtype=np.int64)]
        count_parts = []
        window_base = 0
        for start in range(0, total, self.connection_chunk):
            batch = self.stacked_profiles(connections[start : start + self.connection_chunk])
            error_parts.append(self._reconstruction_errors(batch.matrix))
            offset_parts.append(batch.offsets[1:] + window_base)
            count_parts.append(batch.packet_counts)
            window_base += int(batch.offsets[-1])
        return (
            np.concatenate(error_parts),
            np.concatenate(offset_parts),
            np.concatenate(count_parts),
        )

    def window_error_segments(self, connections: Sequence[Connection]) -> list[np.ndarray]:
        """Per-connection reconstruction-error arrays (batched computation)."""
        errors, offsets, _ = self.window_errors(connections)
        return [
            errors[offsets[index] : offsets[index + 1]]
            for index in range(len(connections))
        ]

    def scores(self, connections: Sequence[Connection]) -> np.ndarray:
        """Adversarial scores for the whole batch."""
        errors, offsets, _ = self.window_errors(connections)
        return adversarial_score_batch(errors, offsets, self.detector_config.score_window)

    def verdicts(
        self, connections: Sequence[Connection], threshold: float
    ) -> list[ConnectionVerdict]:
        """Full Stage-(d) verdicts (score, decision, localisation) per connection."""
        errors, offsets, packet_counts = self.window_errors(connections)
        verdicts = Verdicts(
            stack_length=self.detector_config.stack_length,
            score_window=self.detector_config.score_window,
            threshold=threshold,
        )
        return verdicts.verdict_batch(errors, offsets, packet_counts)

    def detect(
        self, connections: Sequence[Connection], threshold: float, top_n: int = 1
    ) -> list[DetectionResult]:
        """Unified Stage-(d) results for the whole batch in one engine pass.

        One batched window-error computation feeds the segment-wise score,
        localisation and decision reductions; for ``top_n == 1`` even the
        packet localisation is fully vectorized, while larger ``top_n`` ranks
        each segment with the same :func:`localized_packets` helper the
        sequential reference path uses.
        """
        errors, offsets, packet_counts = self.window_errors(connections)
        scores = adversarial_score_batch(errors, offsets, self.detector_config.score_window)
        windows = localize_window_batch(errors, offsets)
        stack_length = self.detector_config.stack_length
        if top_n == 1:
            centers = window_center_packet_batch(windows, stack_length, packet_counts)
            localizations: list[tuple[int, ...]] = [
                (int(center),) if center >= 0 else () for center in centers
            ]
        else:
            localizations = [
                tuple(
                    localized_packets(
                        errors[offsets[index] : offsets[index + 1]],
                        stack_length=stack_length,
                        packet_count=int(packet_counts[index]),
                        top_n=top_n,
                    )
                )
                for index in range(len(connections))
            ]
        return [
            DetectionResult(
                key=connection.key,
                score=float(scores[index]),
                threshold=float(threshold),
                is_adversarial=bool(scores[index] > threshold),
                localized_window=int(windows[index]),
                localized_packets=localizations[index],
                packet_count=int(packet_counts[index]),
            )
            for index, connection in enumerate(connections)
        ]

    def localize(
        self, connections: Sequence[Connection], top_n: int = 1
    ) -> list[list[int]]:
        """Packet indices of the ``top_n`` most suspicious positions per connection.

        The window errors come from one batched pass; the final ranking per
        connection delegates to the same :func:`localized_packets` helper the
        sequential path uses, so tie-breaking (and the ``top_n=0`` edge case)
        match :meth:`Clap.localize` exactly.
        """
        errors, offsets, packet_counts = self.window_errors(connections)
        stack_length = self.detector_config.stack_length
        return [
            localized_packets(
                errors[offsets[index] : offsets[index + 1]],
                stack_length=stack_length,
                packet_count=int(packet_counts[index]),
                top_n=top_n,
            )
            for index in range(len(connections))
        ]
