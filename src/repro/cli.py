"""Command-line interface for the CLAP reproduction.

The CLI covers the operational workflow of the paper end-to-end without
writing any Python:

* ``repro-clap generate``  — synthesise a benign traffic capture (MAWI stand-in);
* ``repro-clap attack``    — inject one of the 73 evasion strategies into a capture;
* ``repro-clap train``     — train CLAP on a benign capture and persist the model;
* ``repro-clap score``     — score a capture with a persisted model (forensic mode);
* ``repro-clap stream``    — replay a capture (pcap or NDJSON) through the
  sharded streaming runtime (``--workers``), emitting one NDJSON event per
  completed connection (online mode); ``--instances``/``--instance`` fan the
  stream out to partitioned detector instances instead;
* ``repro-clap serve-instance`` — run one partitioned-serving detector
  instance: listen on a socket, serve one front-end connection;
* ``repro-clap strategies``— list the attack catalogue.

Every subcommand works on ordinary ``.pcap`` files, so captures produced by
other tools can be analysed as well (TCP/IPv4 only).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from pathlib import Path
from collections.abc import Sequence

from repro.attacks.base import all_strategies, get_strategy
from repro.attacks.injector import AttackInjector
from repro.core.artifacts import ModelManifestError
from repro.core.config import ClapConfig
from repro.core.pipeline import Clap
from repro.netstack.flow import assemble_connections
from repro.netstack.pcap import read_packet_columns, read_pcap, write_pcap
from repro.serve import (
    DropPolicy,
    FaultSpecError,
    FlowPartitioner,
    FlushPolicy,
    InstanceConfig,
    ParallelStreamingDetector,
    ReplaySource,
    Tick,
    open_source,
    parse_fault_specs,
    run_instance,
)
from repro.traffic.dataset import BenignDataset
from repro.traffic.generator import TrafficGenerator


def build_parser() -> argparse.ArgumentParser:
    """Create the top-level argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro-clap",
        description="CLAP: detect DPI evasion attacks with context learning",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="synthesise a benign traffic capture")
    generate.add_argument("output", type=Path, help="output .pcap path")
    generate.add_argument("--connections", type=int, default=200, help="number of connections")
    generate.add_argument("--seed", type=int, default=0, help="random seed")

    attack = subparsers.add_parser("attack", help="inject an evasion strategy into a capture")
    attack.add_argument("input", type=Path, help="benign input .pcap")
    attack.add_argument("output", type=Path, help="adversarial output .pcap")
    attack.add_argument("--strategy", required=True, help="exact strategy name (see `strategies`)")
    attack.add_argument("--seed", type=int, default=0, help="random seed")
    attack.add_argument(
        "--fraction", type=float, default=1.0,
        help="fraction of connections to attack (default: all)",
    )

    train = subparsers.add_parser("train", help="train CLAP on benign traffic and persist the model")
    train.add_argument("model", type=Path, help="directory to write the trained model into")
    train.add_argument("--pcap", type=Path, default=None, help="benign training capture (.pcap)")
    train.add_argument("--connections", type=int, default=200,
                       help="synthesise this many connections when no --pcap is given")
    train.add_argument("--seed", type=int, default=0, help="random seed")
    train.add_argument("--fast", action="store_true", help="use the reduced training budget")
    train.add_argument("--rnn-epochs", type=int, default=None, help="override RNN epochs")
    train.add_argument("--ae-epochs", type=int, default=None, help="override autoencoder epochs")
    train.add_argument("--no-gate-weights", action="store_true",
                       help="train without the GRU context stage (intra-packet features only)")
    train.add_argument("--backend", choices=("gru", "quantized-gru"), default="gru",
                       help="sequence backend to persist: the float64 GRU (default) or "
                            "its int8 weight-quantized conversion (trained as a GRU, "
                            "quantized before the autoencoder/threshold stages)")

    score = subparsers.add_parser("score", help="score a capture with a persisted model")
    score.add_argument("model", type=Path, help="directory containing the trained model")
    score.add_argument("pcap", type=Path, help="capture to analyse")
    score.add_argument("--threshold", type=float, default=None,
                       help="override the persisted adversarial-score threshold")
    score.add_argument("--top", type=int, default=0,
                       help="only print the N highest-scoring connections")
    score.add_argument("--json", action="store_true",
                       help="emit one JSON document instead of the table")
    score.add_argument("--ingest", choices=("columnar", "object"), default="columnar",
                       help="pcap read path: vectorized columnar (default) or "
                            "per-record object parsing (the reference)")
    score.add_argument("--backend", choices=("gru", "gru-f32", "quantized-gru"), default=None,
                       help="serve through this sequence backend instead of the persisted "
                            "one (converted in memory; scores stay within the documented "
                            "equivalence tolerance)")

    stream = subparsers.add_parser(
        "stream", help="replay a capture through the streaming runtime (NDJSON events)")
    stream.add_argument("model", type=Path, help="directory containing the trained model")
    stream.add_argument("pcap", type=Path,
                        help="capture to replay as a packet stream (.pcap or NDJSON)")
    stream.add_argument("--threshold", type=float, default=None,
                        help="override the persisted adversarial-score threshold")
    stream.add_argument("--workers", type=int, default=1,
                        help="flow-table shards / workers (1 = single-threaded)")
    stream.add_argument("--worker-mode", choices=("thread", "process"), default="thread",
                        help="worker substrate: threads (default; share one GIL) or "
                             "processes (one core each, model shared via read-only mmap)")
    stream.add_argument("--source", choices=("auto", "pcap", "ndjson"), default="auto",
                        help="input format; auto picks by file extension")
    stream.add_argument("--ingest", choices=("columnar", "object"), default="columnar",
                        help="pcap read path: vectorized columnar (default) or "
                             "per-record object parsing (the reference)")
    stream.add_argument("--strict", action="store_true",
                        help="abort on malformed capture records instead of skipping them")
    stream.add_argument("--max-batch", type=int, default=128,
                        help="micro-batch size: flush after this many completed connections")
    stream.add_argument("--idle-timeout", type=float, default=60.0,
                        help="evict connections idle for this many stream-seconds")
    stream.add_argument("--close-grace", type=float, default=1.0,
                        help="silence after FIN/RST before a connection completes")
    stream.add_argument("--max-flows", type=int, default=None,
                        help="bound on concurrently tracked connections (global budget)")
    stream.add_argument("--drop-policy", choices=("score", "drop", "sample"),
                        default="score",
                        help="what to do with capacity-evicted flows: score them "
                             "(default), count and drop them unscored, or sample "
                             "a deterministic fraction for scoring")
    stream.add_argument("--drop-sample-rate", type=float, default=0.1,
                        help="fraction of capacity evictions scored under "
                             "--drop-policy sample (handshaken flows always score)")
    stream.add_argument("--drop-min-packets", type=int, default=0,
                        help="capacity evictions shorter than this many packets "
                             "are dropped unscored regardless of policy mode")
    stream.add_argument("--subnet-budget", type=int, default=None,
                        help="per-source-subnet budget of scored capacity "
                             "evictions per window; a flooding subnet is dropped "
                             "beyond it without evicting everyone else's budget")
    stream.add_argument("--subnet-prefix", type=int, default=24,
                        help="prefix length grouping sources for --subnet-budget")
    stream.add_argument("--chunk-size", default="adaptive",
                        help="packets per shard hand-off: an integer pins it, "
                             "'adaptive' (default) grows under backpressure and "
                             "shrinks when flush latency climbs")
    stream.add_argument("--instances", type=int, default=None,
                        help="fan the stream out to this many locally spawned "
                             "partitioned detector instances instead of the "
                             "in-process sharded runtime")
    stream.add_argument("--instance", action="append", default=None,
                        metavar="HOST:PORT",
                        help="connect to an already-running detector instance "
                             "(repeatable; see `serve-instance`)")
    stream.add_argument("--on-instance-failure", choices=("fail", "respawn", "degrade"),
                        default="fail",
                        help="what to do when a detector instance (or process "
                             "shard worker) is lost mid-stream: fail loudly "
                             "(default), respawn it, or degrade — rehash its "
                             "future flows onto the survivors and flag their "
                             "events")
    stream.add_argument("--max-respawns", type=int, default=2,
                        help="per-instance respawn budget before a loss "
                             "degrades instead (--on-instance-failure respawn)")
    stream.add_argument("--io-deadline", type=float, default=30.0,
                        help="deadline (seconds) on instance socket reads and "
                             "writes, and on worker stall detection under a "
                             "non-fail failure policy; 0 disables")
    stream.add_argument("--inject-fault", action="append", default=None,
                        metavar="SPEC",
                        help="inject a deterministic fault (repeatable): "
                             "kill-instance:IDX@N, wedge-instance:IDX@N, "
                             "kill-worker:IDX@N, wedge-worker:IDX@N, "
                             "refuse-connect:IDX[*K], drop-frame:TAG#K, "
                             "corrupt-frame:TAG#K, delay-frame:TAG#K@SECS")
    stream.add_argument("--fault-seed", type=int, default=0,
                        help="seed for fault-plan randomness (corruption bytes)")
    stream.add_argument("--replay-rate", type=float, default=None,
                        help="pace the replay at this many packets per second")
    stream.add_argument("--alerts-only", action="store_true",
                        help="emit only threshold-exceeding connections")
    stream.add_argument("--metrics", action="store_true",
                        help="print the runtime metrics summary to stderr at end of stream")
    stream.add_argument("--backend", choices=("gru", "gru-f32", "quantized-gru"), default=None,
                        help="serve through this sequence backend instead of the persisted "
                             "one (process workers receive the converted model via a "
                             "temporary artifact)")

    serve = subparsers.add_parser(
        "serve-instance",
        help="run one partitioned-serving detector instance (socket back-end)")
    serve.add_argument("model", type=Path, help="directory containing the trained model")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to listen on (default: loopback)")
    serve.add_argument("--port", type=int, default=0,
                       help="port to listen on (default: OS-assigned; printed)")
    serve.add_argument("--workers", type=int, default=1,
                       help="flow-table shards / workers inside this instance")
    serve.add_argument("--worker-mode", choices=("thread", "process"), default="thread",
                       help="worker substrate inside this instance")
    serve.add_argument("--threshold", type=float, default=None,
                       help="override the persisted adversarial-score threshold")
    serve.add_argument("--max-batch", type=int, default=128,
                       help="micro-batch size: flush after this many completions")
    serve.add_argument("--idle-timeout", type=float, default=60.0,
                       help="evict connections idle for this many stream-seconds")
    serve.add_argument("--close-grace", type=float, default=1.0,
                       help="silence after FIN/RST before a connection completes")
    serve.add_argument("--max-flows", type=int, default=None,
                       help="bound on concurrently tracked connections")
    serve.add_argument("--drop-policy", choices=("score", "drop", "sample"),
                       default="score",
                       help="what to do with capacity-evicted flows")
    serve.add_argument("--drop-sample-rate", type=float, default=0.1,
                       help="fraction of capacity evictions scored under "
                            "--drop-policy sample")
    serve.add_argument("--drop-min-packets", type=int, default=0,
                       help="capacity evictions shorter than this are dropped unscored")
    serve.add_argument("--subnet-budget", type=int, default=None,
                       help="per-source-subnet budget of scored capacity evictions")
    serve.add_argument("--subnet-prefix", type=int, default=24,
                       help="prefix length grouping sources for --subnet-budget")
    serve.add_argument("--chunk-size", default="adaptive",
                       help="packets per shard hand-off inside this instance "
                            "(integer or 'adaptive')")
    serve.add_argument("--backend", choices=("gru", "gru-f32", "quantized-gru"),
                       default=None,
                       help="serve through this sequence backend instead of the "
                            "persisted one")

    strategies = subparsers.add_parser("strategies", help="list the 73 evasion strategies")
    strategies.add_argument("--source", default=None,
                            help="filter by source: symtcp, liberate or geneva")
    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations (each returns a process exit code)
# ---------------------------------------------------------------------------


def command_generate(args: argparse.Namespace) -> int:
    generator = TrafficGenerator(seed=args.seed)
    packets = generator.generate_packets(args.connections)
    count = write_pcap(args.output, packets)
    print(f"wrote {count} packets ({args.connections} connections) to {args.output}")
    return 0


def command_attack(args: argparse.Namespace) -> int:
    try:
        strategy = get_strategy(args.strategy)
    except KeyError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not 0.0 <= args.fraction <= 1.0:
        print(f"error: --fraction must be in [0, 1], got {args.fraction}", file=sys.stderr)
        return 2
    connections = assemble_connections(read_pcap(args.input))
    if not connections:
        print(f"error: no TCP connections found in {args.input}", file=sys.stderr)
        return 2
    injector = AttackInjector(seed=args.seed)
    # ``--fraction 0`` genuinely attacks nothing (useful for control captures);
    # any positive fraction attacks at least one connection so a small capture
    # never silently rounds a requested attack down to a no-op.
    attack_count = int(round(len(connections) * args.fraction))
    if attack_count == 0 and args.fraction > 0:
        attack_count = 1
    attacked = []
    for index, connection in enumerate(connections):
        if index < attack_count:
            attacked.append(injector.attack_connection(strategy, connection).connection)
        else:
            attacked.append(connection)
    packets = sorted((p for c in attacked for p in c.packets), key=lambda p: p.timestamp)
    write_pcap(args.output, packets)
    print(f"attacked {attack_count}/{len(connections)} connections with "
          f"'{strategy.name}' and wrote {len(packets)} packets to {args.output}")
    return 0


def _training_config(args: argparse.Namespace) -> ClapConfig:
    config = ClapConfig.fast() if args.fast else ClapConfig()
    if args.rnn_epochs is not None:
        config.rnn.epochs = args.rnn_epochs
    if args.ae_epochs is not None:
        config.autoencoder.epochs = args.ae_epochs
    if getattr(args, "no_gate_weights", False):
        config.detector.include_gate_weights = False
    config.rnn.backend = getattr(args, "backend", None) or "gru"
    return config


def command_train(args: argparse.Namespace) -> int:
    if args.pcap is not None:
        dataset = BenignDataset.from_pcap(args.pcap, seed=args.seed)
        train_connections = dataset.train + dataset.test
        print(f"loaded {len(train_connections)} connections from {args.pcap}")
    else:
        train_connections = TrafficGenerator(seed=args.seed).generate_connections(args.connections)
        print(f"synthesised {len(train_connections)} benign connections (seed={args.seed})")
    clap = Clap(_training_config(args))
    report = clap.fit(train_connections)
    path = clap.save(args.model)
    if report.rnn is not None:
        print(f"RNN state-prediction accuracy: {report.rnn.training_accuracy:.3f}")
    else:
        print("RNN stage:                     skipped (gate weights disabled)")
    print(f"autoencoder final loss:        {report.autoencoder_loss_history[-1]:.5f}")
    print(f"benign-score threshold:        {clap.threshold:.5f}")
    print(f"model written to {path}")
    return 0


def _load_model(path: Path, backend: str | None = None) -> Clap | None:
    """Load a persisted model, rendering artifact problems as clean errors.

    ``backend`` converts the pipeline to an alternative serving backend
    (``--backend``); ``None`` serves the persisted one.
    """
    try:
        clap = Clap.load(path)
        if backend is not None:
            clap = clap.with_backend(backend)
        return clap
    except ModelManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return None
    except FileNotFoundError:
        print(f"error: no model found at {path}", file=sys.stderr)
        return None
    except (KeyError, RuntimeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return None


def command_score(args: argparse.Namespace) -> int:
    clap = _load_model(args.model, backend=getattr(args, "backend", None))
    if clap is None:
        return 2
    threshold = args.threshold if args.threshold is not None else clap.threshold
    try:
        if getattr(args, "ingest", "columnar") == "columnar":
            # Columnar fast path: bulk record scan + vectorized parse; the
            # assembled connections carry column views, so feature extraction
            # in the engine below stays vectorized end to end.
            connections = assemble_connections(read_packet_columns(args.pcap).views())
        else:
            connections = assemble_connections(read_pcap(args.pcap))
    except (ValueError, FileNotFoundError) as error:
        # Bad magic, truncated header, unsupported link type, missing file.
        print(f"error: {error}", file=sys.stderr)
        return 2
    if not connections:
        print(f"error: no TCP connections found in {args.pcap}", file=sys.stderr)
        return 2
    # One batched engine pass scores the whole capture via the unified API.
    results = clap.detect_batch(connections, threshold=threshold)
    results = sorted(results, key=lambda result: result.score, reverse=True)
    flagged = sum(1 for result in results if result.is_adversarial)
    if args.top:
        results = results[: args.top]
    if args.json:
        payload = {
            "model": str(args.model),
            "capture": str(args.pcap),
            "threshold": threshold,
            "connections_total": len(connections),
            "connections_flagged": flagged,
            "results": [result.to_dict() for result in results],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"{'score':>10}  {'verdict':>8}  {'suspect pkt':>11}  connection")
    for result in results:
        label = "ATTACK" if result.is_adversarial else "benign"
        print(f"{result.score:10.5f}  {label:>8}  {result.localized_packet:>11}  {result.key}")
    print(f"\n{flagged}/{len(connections)} connections exceed threshold {threshold:.5f}")
    return 0


def _close_quietly(detector) -> None:
    """Tear down a streaming detector without masking the original error."""
    try:
        detector.close()
    except Exception:
        pass


class _GracefulShutdown(BaseException):
    """Raised by the stream signal handlers: drain, report, exit 128+signum.

    A :class:`BaseException` so the ``except (ValueError, ...)`` operational
    handlers never swallow a shutdown request.
    """

    def __init__(self, signum: int) -> None:
        super().__init__(f"received signal {signum}")
        self.signum = signum


def _print_degradation(detector) -> None:
    """One machine-readable stderr line summarising known stream loss."""
    report_method = getattr(detector, "degradation_report", None)
    if report_method is None:
        return
    report = report_method()
    if report:
        print(f"degradation: {json.dumps(report.to_dict())}", file=sys.stderr)


def _stream_drop_policy(args: argparse.Namespace) -> DropPolicy:
    """The admission policy the stream/serve-instance knobs describe."""
    return DropPolicy(
        mode=args.drop_policy,
        min_packets=args.drop_min_packets,
        sample_rate=args.drop_sample_rate,
        subnet_budget=args.subnet_budget,
        subnet_prefix=args.subnet_prefix,
    )


def _parse_chunk_size(value: str | int) -> str | int:
    """``--chunk-size``: 'adaptive' or a positive integer."""
    if value == "adaptive":
        return value
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"--chunk-size must be an integer or 'adaptive', got {value!r}"
        ) from None


def command_stream(args: argparse.Namespace) -> int:
    if args.max_batch < 1:
        print(f"error: --max-batch must be at least 1, got {args.max_batch}", file=sys.stderr)
        return 2
    endpoints = args.instance or None
    if args.instances is not None and endpoints is not None:
        print("error: --instances and --instance are mutually exclusive", file=sys.stderr)
        return 2
    partitioned = args.instances is not None or endpoints is not None
    clap = None
    if not partitioned:
        clap = _load_model(args.model, backend=getattr(args, "backend", None))
        if clap is None:
            return 2
    elif endpoints is None and not args.model.exists():
        # Local instances load the artifact themselves; fail fast here
        # instead of through N children's handshake timeouts.
        print(f"error: no model found at {args.model}", file=sys.stderr)
        return 2
    if not args.pcap.exists():
        print(f"error: no capture found at {args.pcap}", file=sys.stderr)
        return 2

    def emit(events) -> None:
        for event in events:
            if args.alerts_only and not event.is_alert:
                continue
            print(json.dumps(event.to_dict()))

    def emit_service(detector) -> None:
        # InstanceLost / DegradedMode announcements, inline with detections.
        for event in getattr(detector, "service_events", list)():
            print(json.dumps(event.to_dict()))

    fault_plan = None
    if args.inject_fault:
        try:
            fault_plan = parse_fault_specs(args.inject_fault, seed=args.fault_seed)
        except FaultSpecError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    try:
        chunk_size = _parse_chunk_size(args.chunk_size)
        source: object = open_source(args.pcap, args.source, ingest=args.ingest,
                                     strict=args.strict)
        if args.replay_rate is not None:
            # Heartbeat at the close-grace cadence so FIN'd flows complete
            # during quiet spells; with a zero grace there is nothing for a
            # tick to expire earlier, so skip the heartbeats entirely.
            tick_interval = args.close_grace if args.close_grace > 0 else None
            source = ReplaySource(source, rate=args.replay_rate,
                                  tick_interval=tick_interval)
        flush_policy = FlushPolicy(max_batch=args.max_batch,
                                   max_buffered=max(args.max_batch, 1024))
        drop_policy = _stream_drop_policy(args)
        if partitioned:
            detector: object = FlowPartitioner(
                args.model if endpoints is None else None,
                instances=args.instances,
                endpoints=endpoints,
                config=InstanceConfig(
                    workers=args.workers,
                    worker_mode=args.worker_mode,
                    flush_policy=flush_policy,
                    threshold=args.threshold,
                    idle_timeout=args.idle_timeout,
                    close_grace=args.close_grace,
                    max_flows=args.max_flows,
                    drop_policy=drop_policy,
                    chunk_size=chunk_size,
                ),
                backend=getattr(args, "backend", None),
                chunk_size=chunk_size,
                on_instance_failure=args.on_instance_failure,
                max_respawns=args.max_respawns,
                io_deadline=args.io_deadline,
                fault_plan=fault_plan,
            )
        else:
            detector = ParallelStreamingDetector(
                clap,
                workers=args.workers,
                worker_mode=args.worker_mode,
                flush_policy=flush_policy,
                threshold=args.threshold,
                idle_timeout=args.idle_timeout,
                close_grace=args.close_grace,
                max_flows=args.max_flows,
                drop_policy=drop_policy,
                chunk_size=chunk_size,
                # Process workers mmap the artifact the CLI already has on
                # disk; no temporary re-save of the model.  With a --backend
                # override the on-disk artifact no longer matches the served
                # pipeline, so let the runtime save the converted model to a
                # temporary directory for the workers instead.
                model_dir=(
                    args.model
                    if args.worker_mode == "process" and getattr(args, "backend", None) is None
                    else None
                ),
                on_worker_failure=args.on_instance_failure,
                max_worker_respawns=args.max_respawns,
                # Stall detection only under a non-fail policy or active fault
                # injection: the historical fail path never timed a barrier.
                stall_deadline=(
                    (args.io_deadline or None)
                    if args.on_instance_failure != "fail" or fault_plan is not None
                    else None
                ),
                fault_plan=fault_plan,
            )
    except ValueError as error:
        # FlowTable/FlushPolicy/DropPolicy validate their knobs; render the
        # message (e.g. "idle_timeout must be positive") instead of a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as error:
        # A refused/dead --instance endpoint is an operational error, not a bug.
        print(f"error: {error}", file=sys.stderr)
        return 2
    def _request_shutdown(signum, frame) -> None:
        raise _GracefulShutdown(signum)

    previous_handlers: dict[int, object] = {}
    if threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGTERM, signal.SIGINT):
            previous_handlers[signum] = signal.signal(signum, _request_shutdown)
    streamed = 0
    try:
        try:
            for item in source:
                if isinstance(item, Tick):
                    detector.poll(item.now)
                else:
                    streamed += 1
                    detector.ingest(item)
                emit(detector.events())
                emit_service(detector)
        except _GracefulShutdown as stop:
            # Hardened shutdown: drain what completed, report partial
            # results and known loss, exit with the conventional code.
            try:
                detector.close()
                emit(detector.events())
                emit_service(detector)
                _print_degradation(detector)
            except Exception as error:
                print(f"error: {error}", file=sys.stderr)
            print(
                f"interrupted by signal {stop.signum} after {streamed} packets; "
                "partial results above",
                file=sys.stderr,
            )
            return 128 + stop.signum
        except (ValueError, RuntimeError, ConnectionError) as error:
            # A strict-mode parse error (ValueError), a shard-worker failure
            # (RuntimeError) or a lost instance (ConnectionError) must not leak
            # the worker pool: shut it down, then render the message instead of
            # a traceback.
            _close_quietly(detector)
            _print_degradation(detector)
            print(f"error: {error}", file=sys.stderr)
            return 2
        except BaseException:
            _close_quietly(detector)
            raise
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
    # close() also queues the final-drain events, so the events() drain below
    # delivers them exactly once, in the deterministic close ordering.
    detector.close()
    emit(detector.events())
    emit_service(detector)
    if streamed == 0:
        print(f"error: no TCP packets found in {args.pcap}", file=sys.stderr)
        return 2
    print(
        f"{detector.alerts_emitted}/{detector.connections_seen} connections exceeded "
        f"threshold {detector.threshold:.5f}",
        file=sys.stderr,
    )
    _print_degradation(detector)
    if args.metrics:
        print(detector.render_metrics(), file=sys.stderr)
    return 0


class _AnnounceAddress:
    """``ready`` sink for :func:`run_instance`: print the bound address."""

    def put(self, address) -> None:
        host, port = address
        print(f"listening on {host}:{port}", flush=True)


def command_serve_instance(args: argparse.Namespace) -> int:
    if args.max_batch < 1:
        print(f"error: --max-batch must be at least 1, got {args.max_batch}", file=sys.stderr)
        return 2
    if not args.model.exists():
        print(f"error: no model found at {args.model}", file=sys.stderr)
        return 2
    try:
        config = InstanceConfig(
            workers=args.workers,
            worker_mode=args.worker_mode,
            flush_policy=FlushPolicy(max_batch=args.max_batch,
                                     max_buffered=max(args.max_batch, 1024)),
            threshold=args.threshold,
            idle_timeout=args.idle_timeout,
            close_grace=args.close_grace,
            max_flows=args.max_flows,
            drop_policy=_stream_drop_policy(args),
            chunk_size=_parse_chunk_size(args.chunk_size),
        )
        return run_instance(
            args.model,
            host=args.host,
            port=args.port,
            config=config,
            backend=args.backend,
            ready=_AnnounceAddress(),
        )
    except ModelManifestError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except (ValueError, KeyError, RuntimeError, ConnectionError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def command_strategies(args: argparse.Namespace) -> int:
    wanted = (args.source or "").strip().lower()
    for strategy in all_strategies():
        source_token = strategy.source.name.lower()
        if wanted and wanted not in source_token:
            continue
        print(f"{strategy.source.citation:>5}  {strategy.category.name:<12}  {strategy.name}")
    return 0


_COMMANDS = {
    "generate": command_generate,
    "attack": command_attack,
    "train": command_train,
    "score": command_score,
    "stream": command_stream,
    "serve-instance": command_serve_instance,
    "strategies": command_strategies,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # A downstream consumer (e.g. ``stream ... | head``) closed the pipe;
        # redirect stdout at the fd level so interpreter shutdown does not
        # trip over the dead descriptor, and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
