"""Raw header-field feature extraction (features #1-#32 of Table 7).

The paper's guiding principle is to use header fields "in the raw form to the
extent possible", with only minimal preprocessing: sequence/acknowledgement
numbers are made incremental (relative to the connection's initial sequence
numbers), checksums are turned into validity bits, and timestamps are made
relative to the connection start.  Everything else is the literal field value.

Two implementations coexist:

* the per-packet path (:meth:`RawFeatureExtractor.extract_packets_reference`)
  — one Python loop per packet, kept as the tested oracle;
* the columnar path (:func:`extract_columns_segments`, reached through
  :meth:`RawFeatureExtractor.extract_packet_trains`) — all 32 features for
  many connections at once as NumPy array operations over a shared
  :class:`~repro.netstack.columns.PacketColumns`, numerically identical to
  the reference (``tests/features/test_columnar_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.features.schema import NUM_RAW_FEATURES
from repro.netstack.columns import ColumnPacketView, PacketColumns, columns_of_train
from repro.netstack.flow import Connection
from repro.netstack.options import encode_options, summarize_feature_options
from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TCP_BASE_HEADER_LENGTH, TcpFlags
from repro.tcpstate.window import seq_diff


@dataclass
class _ConnectionContext:
    """Per-connection reference values needed to make fields incremental."""

    client_isn: int | None = None
    server_isn: int | None = None
    start_time: float | None = None
    previous_tsval: dict | None = None

    def __post_init__(self) -> None:
        if self.previous_tsval is None:
            self.previous_tsval = {}


class RawFeatureExtractor:
    """Extract the 32 raw IP/TCP features for every packet of a connection."""

    feature_count = NUM_RAW_FEATURES

    def extract_connection(self, connection: Connection) -> np.ndarray:
        """Return an array of shape ``(len(connection), 32)``."""
        return self.extract_packets(connection.packets)

    def extract_packets(self, packets: Sequence[Packet]) -> np.ndarray:
        """Extract features for an ordered packet train of one connection.

        Column-backed trains (every packet a
        :class:`~repro.netstack.columns.ColumnPacketView` over one shared
        :class:`~repro.netstack.columns.PacketColumns`) take the vectorized
        path; anything else goes through the per-packet reference.
        """
        columns = columns_of_train(packets)
        if columns is None:
            return self.extract_packets_reference(packets)
        size = len(packets)
        return extract_columns_segments(
            columns,
            np.fromiter((packet.index for packet in packets), dtype=np.int64, count=size),
            np.array([0, size], dtype=np.int64),
            np.fromiter((int(packet.direction) for packet in packets), dtype=np.int64, count=size),
        )

    def extract_packets_reference(self, packets: Sequence[Packet]) -> np.ndarray:
        """The per-packet oracle: one Python loop, one row list per packet."""
        packets = [
            packet.materialize() if isinstance(packet, ColumnPacketView) else packet
            for packet in packets
        ]
        context = self._build_context(packets)
        rows = [self._extract_packet(packet, context) for packet in packets]
        if not rows:
            return np.zeros((0, NUM_RAW_FEATURES), dtype=np.float64)
        return np.array(rows, dtype=np.float64)

    def extract_packet_trains(self, trains: Sequence[Sequence[Packet]]) -> list[np.ndarray]:
        """Feature matrices for many packet trains (one per connection).

        Trains sharing one :class:`~repro.netstack.columns.PacketColumns` are
        concatenated and extracted in a single vectorized pass
        (:func:`extract_columns_segments`); the rest fall back to the
        per-packet reference.  Output order matches the input.
        """
        results: list[np.ndarray | None] = [None] * len(trains)
        groups: dict[int, tuple[PacketColumns, list[int]]] = {}
        for train_index, train in enumerate(trains):
            columns = columns_of_train(train)
            if columns is None:
                results[train_index] = self.extract_packets_reference(train)
            else:
                groups.setdefault(id(columns), (columns, []))[1].append(train_index)
        for columns, members in groups.values():
            index_parts: list[int] = []
            direction_parts: list[int] = []
            bounds = [0]
            for train_index in members:
                train = trains[train_index]
                index_parts.extend(packet.index for packet in train)
                direction_parts.extend(int(packet.direction) for packet in train)
                bounds.append(len(index_parts))
            matrix = extract_columns_segments(
                columns,
                np.asarray(index_parts, dtype=np.int64),
                np.asarray(bounds, dtype=np.int64),
                np.asarray(direction_parts, dtype=np.int64),
            )
            for position, train_index in enumerate(members):
                results[train_index] = matrix[bounds[position] : bounds[position + 1]]
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------ private
    def _build_context(self, packets: Sequence[Packet]) -> _ConnectionContext:
        context = _ConnectionContext()
        for packet in packets:
            if context.start_time is None:
                context.start_time = packet.timestamp
            if packet.direction is Direction.CLIENT_TO_SERVER:
                if context.client_isn is None:
                    context.client_isn = packet.tcp.seq
            elif context.server_isn is None:
                context.server_isn = packet.tcp.seq
            if context.client_isn is not None and context.server_isn is not None:
                break
        if context.start_time is None:
            context.start_time = 0.0
        return context

    @staticmethod
    def _relative_seq(value: int, base: int | None) -> float:
        if base is None:
            return 0.0
        return float(seq_diff(value, base))

    def _extract_packet(self, packet: Packet, context: _ConnectionContext) -> list[float]:
        """One packet's 32 raw features, as a plain list.

        This was the hottest Python loop of the testing phase (columnar
        extraction has since taken over the bulk path; this stays as the
        oracle), so it avoids repeated work the convenience accessors would
        do: the options are scanned once via
        :func:`~repro.netstack.options.summarize_feature_options` (which also
        skips malformed stand-ins instead of tripping over them), encoded
        once (``TcpHeader.header_length`` re-encodes on every call), and the
        row is built as a list — one ``np.array`` call per connection beats
        per-element writes into a numpy vector.
        """
        tcp = packet.tcp
        ip = packet.ip
        flags = tcp.flags
        payload_length = len(packet.payload)

        is_client = packet.direction is Direction.CLIENT_TO_SERVER
        own_isn = context.client_isn if is_client else context.server_isn
        peer_isn = context.server_isn if is_client else context.client_isn

        mss, timestamp_option, window_scale, user_timeout, md5 = summarize_feature_options(
            tcp.options
        )

        header_length = TCP_BASE_HEADER_LENGTH + len(encode_options(tcp.options))
        data_offset = tcp.data_offset if tcp.data_offset is not None else header_length // 4
        tcp_segment_length = header_length + payload_length

        # #18-#20 and #24: timestamp option values and the per-direction delta
        # relative to the previous packet (0 when absent or on the first one).
        if timestamp_option is not None:
            tsval = float(timestamp_option.tsval % 2**31)
            tsecr = float(timestamp_option.tsecr % 2**31)
            previous = context.previous_tsval.get(packet.direction)
            tsval_delta = (
                float(seq_diff(timestamp_option.tsval, previous)) if previous is not None else 0.0
            )
            context.previous_tsval[packet.direction] = timestamp_option.tsval
        else:
            tsval = tsecr = tsval_delta = 0.0

        return [
            # --- TCP layer (1..25) -------------------------------------------
            0.0 if is_client else 1.0,
            self._relative_seq(tcp.seq, own_isn),
            self._relative_seq(tcp.ack, peer_isn) if flags & TcpFlags.ACK else 0.0,
            float(data_offset),
            1.0 if flags & TcpFlags.FIN else 0.0,
            1.0 if flags & TcpFlags.SYN else 0.0,
            1.0 if flags & TcpFlags.RST else 0.0,
            1.0 if flags & TcpFlags.PSH else 0.0,
            1.0 if flags & TcpFlags.ACK else 0.0,
            1.0 if flags & TcpFlags.URG else 0.0,
            1.0 if flags & TcpFlags.ECE else 0.0,
            1.0 if flags & TcpFlags.CWR else 0.0,
            1.0 if flags & TcpFlags.NS else 0.0,
            float(tcp.window),
            1.0 if packet.tcp_checksum_ok() else 0.0,
            float(tcp.urgent_pointer),
            float(payload_length),
            float(mss.value) if mss is not None else 0.0,
            tsval,
            tsecr,
            float(window_scale.shift) if window_scale is not None else 0.0,
            float(user_timeout.timeout) if user_timeout is not None else 0.0,
            1.0 if (md5 is None or md5.valid) else 0.0,
            tsval_delta,
            # #25: frame timestamp relative to the first packet, in ms.
            (packet.timestamp - (context.start_time or 0.0)) * 1000.0,
            # --- IP layer (26..32) -------------------------------------------
            float(ip.effective_total_length(tcp_segment_length)),
            float(ip.ttl),
            float(ip.effective_ihl() * 4),
            1.0 if ip.has_correct_checksum(payload_length=tcp_segment_length) else 0.0,
            float(ip.version),
            float(ip.tos),
            1.0 if len(ip.options) > 0 else 0.0,
        ]


def _seq_diff_array(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.tcpstate.window.seq_diff` over int64 arrays."""
    diff = (a - b) & 0xFFFFFFFF
    return np.where(diff >= 2**31, diff - 2**32, diff)


_FLAG_COLUMNS: tuple[tuple[int, int], ...] = (
    (4, TcpFlags.FIN),
    (5, TcpFlags.SYN),
    (6, TcpFlags.RST),
    (7, TcpFlags.PSH),
    (8, TcpFlags.ACK),
    (9, TcpFlags.URG),
    (10, TcpFlags.ECE),
    (11, TcpFlags.CWR),
    (12, TcpFlags.NS),
)


def extract_columns_segments(
    columns: PacketColumns,
    indices: np.ndarray,
    bounds: np.ndarray,
    directions: np.ndarray,
) -> np.ndarray:
    """All 32 raw features for many connections in one vectorized pass.

    ``indices`` selects the packets (rows of ``columns``) of every
    connection back to back; segment ``s`` owns
    ``indices[bounds[s] : bounds[s + 1]]`` (segments must be non-empty) and
    ``directions`` carries each packet's assembled direction.  Per-connection
    reference values — initial sequence numbers per direction, the previous
    TSval per direction, the first timestamp — are resolved with segment-wise
    reductions, so no Python runs per packet.  Output is bit-identical to the
    per-packet reference.
    """
    total = int(indices.shape[0])
    out = np.zeros((total, NUM_RAW_FEATURES), dtype=np.float64)
    if total == 0:
        return out

    seq = columns.seq[indices]
    ack = columns.ack[indices]
    flags = columns.flags[indices]
    timestamps = columns.timestamp[indices]
    segment_count = bounds.shape[0] - 1
    segment_starts = bounds[:-1]
    segment_sizes = np.diff(bounds)
    segment_of = np.repeat(np.arange(segment_count), segment_sizes)
    position = np.arange(total)
    is_client = directions == 0

    # Initial sequence numbers: the first packet of each direction (the same
    # first-occurrence rule ``_build_context`` applies).
    candidates = np.where(is_client, position, total)
    first_c2s = np.minimum.reduceat(candidates, segment_starts)
    candidates = np.where(is_client, total, position)
    first_s2c = np.minimum.reduceat(candidates, segment_starts)
    own_first = np.where(is_client, first_c2s[segment_of], first_s2c[segment_of])
    peer_first = np.where(is_client, first_s2c[segment_of], first_c2s[segment_of])
    has_peer = peer_first < total
    peer_isn = seq[np.minimum(peer_first, total - 1)]
    ack_flag = (flags & TcpFlags.ACK) != 0

    out[:, 0] = directions
    out[:, 1] = _seq_diff_array(seq, seq[own_first])
    out[:, 2] = np.where(ack_flag & has_peer, _seq_diff_array(ack, peer_isn), 0.0)
    out[:, 3] = columns.data_offset[indices]
    for column, mask in _FLAG_COLUMNS:
        out[:, column] = (flags & mask) != 0
    out[:, 13] = columns.window[indices]
    out[:, 14] = columns.tcp_ok[indices]
    out[:, 15] = columns.urgent[indices]
    out[:, 16] = columns.payload_len[indices]
    out[:, 17] = columns.mss[indices]
    ts_present = columns.ts_present[indices]
    tsval = columns.tsval[indices]
    out[:, 18] = np.where(ts_present, tsval % 2**31, 0)
    out[:, 19] = np.where(ts_present, columns.tsecr[indices] % 2**31, 0)
    out[:, 20] = columns.ws_shift[indices]
    out[:, 21] = columns.ut_timeout[indices]
    out[:, 22] = columns.md5_ok[indices]

    # #24: per-direction TSval delta — grouped consecutive diffs over the
    # packets that carry a Timestamp option (others neither emit nor reset).
    with_ts = np.flatnonzero(ts_present)
    if with_ts.size:
        group = segment_of[with_ts] * 2 + directions[with_ts]
        order = np.argsort(group, kind="stable")
        ordered_rows = with_ts[order]
        ordered_group = group[order]
        ordered_tsval = tsval[with_ts][order]
        same_group = ordered_group[1:] == ordered_group[:-1]
        deltas = _seq_diff_array(ordered_tsval[1:], ordered_tsval[:-1])
        out[ordered_rows[1:][same_group], 23] = deltas[same_group]

    # #25: frame timestamp relative to the connection's first packet, in ms.
    out[:, 24] = (timestamps - np.repeat(timestamps[segment_starts], segment_sizes)) * 1000.0

    out[:, 25] = columns.total_length[indices]
    out[:, 26] = columns.ttl[indices]
    out[:, 27] = columns.ihl[indices] * 4
    out[:, 28] = columns.ip_ok[indices]
    out[:, 29] = columns.version[indices]
    out[:, 30] = columns.tos[indices]
    out[:, 31] = columns.ip_options[indices]
    return out


def extract_raw_features(connections: Sequence[Connection]) -> list[np.ndarray]:
    """Extract raw features for a list of connections (one array each)."""
    extractor = RawFeatureExtractor()
    return extractor.extract_packet_trains([connection.packets for connection in connections])
