"""Raw header-field feature extraction (features #1-#32 of Table 7).

The paper's guiding principle is to use header fields "in the raw form to the
extent possible", with only minimal preprocessing: sequence/acknowledgement
numbers are made incremental (relative to the connection's initial sequence
numbers), checksums are turned into validity bits, and timestamps are made
relative to the connection start.  Everything else is the literal field value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.features.schema import NUM_RAW_FEATURES
from repro.netstack.flow import Connection
from repro.netstack.options import OptionKind, encode_options
from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TCP_BASE_HEADER_LENGTH, TcpFlags
from repro.tcpstate.window import seq_diff


@dataclass
class _ConnectionContext:
    """Per-connection reference values needed to make fields incremental."""

    client_isn: Optional[int] = None
    server_isn: Optional[int] = None
    start_time: Optional[float] = None
    previous_tsval: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.previous_tsval is None:
            self.previous_tsval = {}


class RawFeatureExtractor:
    """Extract the 32 raw IP/TCP features for every packet of a connection."""

    feature_count = NUM_RAW_FEATURES

    def extract_connection(self, connection: Connection) -> np.ndarray:
        """Return an array of shape ``(len(connection), 32)``."""
        return self.extract_packets(connection.packets)

    def extract_packets(self, packets: Sequence[Packet]) -> np.ndarray:
        """Extract features for an ordered packet train of one connection."""
        context = self._build_context(packets)
        rows = [self._extract_packet(packet, context) for packet in packets]
        if not rows:
            return np.zeros((0, NUM_RAW_FEATURES), dtype=np.float64)
        return np.array(rows, dtype=np.float64)

    # ------------------------------------------------------------------ private
    def _build_context(self, packets: Sequence[Packet]) -> _ConnectionContext:
        context = _ConnectionContext()
        for packet in packets:
            if context.start_time is None:
                context.start_time = packet.timestamp
            if packet.direction is Direction.CLIENT_TO_SERVER:
                if context.client_isn is None:
                    context.client_isn = packet.tcp.seq
            elif context.server_isn is None:
                context.server_isn = packet.tcp.seq
            if context.client_isn is not None and context.server_isn is not None:
                break
        if context.start_time is None:
            context.start_time = 0.0
        return context

    @staticmethod
    def _relative_seq(value: int, base: Optional[int]) -> float:
        if base is None:
            return 0.0
        return float(seq_diff(value, base))

    def _extract_packet(self, packet: Packet, context: _ConnectionContext) -> List[float]:
        """One packet's 32 raw features, as a plain list.

        This is the hottest Python loop of the testing phase, so it avoids
        repeated work the convenience accessors would do: the options list is
        scanned once (instead of one scan per option kind), the options are
        encoded once (``TcpHeader.header_length`` re-encodes on every call),
        and the row is built as a list — one ``np.array`` call per connection
        beats per-element writes into a numpy vector.
        """
        tcp = packet.tcp
        ip = packet.ip
        flags = tcp.flags
        payload_length = len(packet.payload)

        is_client = packet.direction is Direction.CLIENT_TO_SERVER
        own_isn = context.client_isn if is_client else context.server_isn
        peer_isn = context.server_isn if is_client else context.client_isn

        # Single pass over the options; ``find_option`` semantics (first of a
        # kind wins) are preserved by only recording the first occurrence.
        mss = timestamp_option = window_scale = user_timeout = md5 = None
        for option in tcp.options:
            kind = getattr(option, "kind", None)
            if kind == OptionKind.MSS:
                if mss is None:
                    mss = option
            elif kind == OptionKind.TIMESTAMP:
                if timestamp_option is None:
                    timestamp_option = option
            elif kind == OptionKind.WINDOW_SCALE:
                if window_scale is None:
                    window_scale = option
            elif kind == OptionKind.USER_TIMEOUT:
                if user_timeout is None:
                    user_timeout = option
            elif kind == OptionKind.MD5_SIGNATURE:
                if md5 is None:
                    md5 = option

        header_length = TCP_BASE_HEADER_LENGTH + len(encode_options(tcp.options))
        data_offset = tcp.data_offset if tcp.data_offset is not None else header_length // 4
        tcp_segment_length = header_length + payload_length

        # #18-#20 and #24: timestamp option values and the per-direction delta
        # relative to the previous packet (0 when absent or on the first one).
        if timestamp_option is not None:
            tsval = float(timestamp_option.tsval % 2**31)
            tsecr = float(timestamp_option.tsecr % 2**31)
            previous = context.previous_tsval.get(packet.direction)
            tsval_delta = (
                float(seq_diff(timestamp_option.tsval, previous)) if previous is not None else 0.0
            )
            context.previous_tsval[packet.direction] = timestamp_option.tsval
        else:
            tsval = tsecr = tsval_delta = 0.0

        return [
            # --- TCP layer (1..25) -------------------------------------------
            0.0 if is_client else 1.0,
            self._relative_seq(tcp.seq, own_isn),
            self._relative_seq(tcp.ack, peer_isn) if flags & TcpFlags.ACK else 0.0,
            float(data_offset),
            1.0 if flags & TcpFlags.FIN else 0.0,
            1.0 if flags & TcpFlags.SYN else 0.0,
            1.0 if flags & TcpFlags.RST else 0.0,
            1.0 if flags & TcpFlags.PSH else 0.0,
            1.0 if flags & TcpFlags.ACK else 0.0,
            1.0 if flags & TcpFlags.URG else 0.0,
            1.0 if flags & TcpFlags.ECE else 0.0,
            1.0 if flags & TcpFlags.CWR else 0.0,
            1.0 if flags & TcpFlags.NS else 0.0,
            float(tcp.window),
            1.0 if packet.tcp_checksum_ok() else 0.0,
            float(tcp.urgent_pointer),
            float(payload_length),
            float(mss.value) if mss is not None else 0.0,
            tsval,
            tsecr,
            float(window_scale.shift) if window_scale is not None else 0.0,
            float(user_timeout.timeout) if user_timeout is not None else 0.0,
            1.0 if (md5 is None or md5.valid) else 0.0,
            tsval_delta,
            # #25: frame timestamp relative to the first packet, in ms.
            (packet.timestamp - (context.start_time or 0.0)) * 1000.0,
            # --- IP layer (26..32) -------------------------------------------
            float(ip.effective_total_length(tcp_segment_length)),
            float(ip.ttl),
            float(ip.effective_ihl() * 4),
            1.0 if ip.has_correct_checksum(payload_length=tcp_segment_length) else 0.0,
            float(ip.version),
            float(ip.tos),
            1.0 if len(ip.options) > 0 else 0.0,
        ]


def extract_raw_features(connections: Sequence[Connection]) -> List[np.ndarray]:
    """Extract raw features for a list of connections (one array each)."""
    extractor = RawFeatureExtractor()
    return [extractor.extract_connection(connection) for connection in connections]
