"""Raw header-field feature extraction (features #1-#32 of Table 7).

The paper's guiding principle is to use header fields "in the raw form to the
extent possible", with only minimal preprocessing: sequence/acknowledgement
numbers are made incremental (relative to the connection's initial sequence
numbers), checksums are turned into validity bits, and timestamps are made
relative to the connection start.  Everything else is the literal field value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.features.schema import NUM_RAW_FEATURES
from repro.netstack.flow import Connection
from repro.netstack.options import OptionKind
from repro.netstack.packet import Direction, Packet
from repro.netstack.tcp import TcpFlags
from repro.tcpstate.window import seq_diff

_FLAG_ORDER = (
    TcpFlags.FIN,
    TcpFlags.SYN,
    TcpFlags.RST,
    TcpFlags.PSH,
    TcpFlags.ACK,
    TcpFlags.URG,
    TcpFlags.ECE,
    TcpFlags.CWR,
    TcpFlags.NS,
)


@dataclass
class _ConnectionContext:
    """Per-connection reference values needed to make fields incremental."""

    client_isn: Optional[int] = None
    server_isn: Optional[int] = None
    start_time: Optional[float] = None
    previous_tsval: Optional[dict] = None

    def __post_init__(self) -> None:
        if self.previous_tsval is None:
            self.previous_tsval = {}


class RawFeatureExtractor:
    """Extract the 32 raw IP/TCP features for every packet of a connection."""

    feature_count = NUM_RAW_FEATURES

    def extract_connection(self, connection: Connection) -> np.ndarray:
        """Return an array of shape ``(len(connection), 32)``."""
        return self.extract_packets(connection.packets)

    def extract_packets(self, packets: Sequence[Packet]) -> np.ndarray:
        """Extract features for an ordered packet train of one connection."""
        context = self._build_context(packets)
        rows = [self._extract_packet(packet, context) for packet in packets]
        if not rows:
            return np.zeros((0, NUM_RAW_FEATURES), dtype=np.float64)
        return np.vstack(rows)

    # ------------------------------------------------------------------ private
    def _build_context(self, packets: Sequence[Packet]) -> _ConnectionContext:
        context = _ConnectionContext()
        for packet in packets:
            if context.start_time is None:
                context.start_time = packet.timestamp
            if packet.direction is Direction.CLIENT_TO_SERVER and context.client_isn is None:
                context.client_isn = packet.tcp.seq
            if packet.direction is Direction.SERVER_TO_CLIENT and context.server_isn is None:
                context.server_isn = packet.tcp.seq
        if context.start_time is None:
            context.start_time = 0.0
        return context

    @staticmethod
    def _relative_seq(value: int, base: Optional[int]) -> float:
        if base is None:
            return 0.0
        return float(seq_diff(value, base))

    def _extract_packet(self, packet: Packet, context: _ConnectionContext) -> np.ndarray:
        features = np.zeros(NUM_RAW_FEATURES, dtype=np.float64)
        tcp = packet.tcp
        ip = packet.ip

        is_client = packet.direction is Direction.CLIENT_TO_SERVER
        own_isn = context.client_isn if is_client else context.server_isn
        peer_isn = context.server_isn if is_client else context.client_isn

        # --- TCP layer (1..25) ------------------------------------------------
        features[0] = 0.0 if is_client else 1.0
        features[1] = self._relative_seq(tcp.seq, own_isn)
        features[2] = self._relative_seq(tcp.ack, peer_isn) if tcp.has_flag(TcpFlags.ACK) else 0.0
        features[3] = float(tcp.effective_data_offset())
        for position, flag in enumerate(_FLAG_ORDER):
            features[4 + position] = 1.0 if tcp.has_flag(flag) else 0.0
        features[13] = float(tcp.window)
        features[14] = 1.0 if packet.tcp_checksum_ok() else 0.0
        features[15] = float(tcp.urgent_pointer)
        features[16] = float(len(packet.payload))

        mss = tcp.mss_option()
        features[17] = float(mss.value) if mss is not None else 0.0
        timestamp_option = tcp.timestamp_option()
        if timestamp_option is not None:
            features[18] = float(timestamp_option.tsval % 2**31)
            features[19] = float(timestamp_option.tsecr % 2**31)
        window_scale = tcp.window_scale_option()
        features[20] = float(window_scale.shift) if window_scale is not None else 0.0
        user_timeout = tcp.user_timeout_option()
        features[21] = float(user_timeout.timeout) if user_timeout is not None else 0.0
        md5 = tcp.md5_option()
        features[22] = 1.0 if (md5 is None or md5.valid) else 0.0

        # #24: TCP timestamp delta relative to the previous packet of the same
        # direction (0 when the option is absent or on the first packet).
        if timestamp_option is not None:
            previous = context.previous_tsval.get(packet.direction)
            if previous is not None:
                features[23] = float(seq_diff(timestamp_option.tsval, previous))
            context.previous_tsval[packet.direction] = timestamp_option.tsval
        # #25: frame timestamp relative to the first packet, in milliseconds.
        features[24] = (packet.timestamp - (context.start_time or 0.0)) * 1000.0

        # --- IP layer (26..32) ------------------------------------------------
        tcp_segment_length = tcp.header_length + len(packet.payload)
        features[25] = float(ip.effective_total_length(tcp_segment_length))
        features[26] = float(ip.ttl)
        features[27] = float(ip.effective_ihl() * 4)
        features[28] = 1.0 if packet.ip_checksum_ok() else 0.0
        features[29] = float(ip.version)
        features[30] = float(ip.tos)
        features[31] = 1.0 if len(ip.options) > 0 else 0.0
        return features


def extract_raw_features(connections: Sequence[Connection]) -> List[np.ndarray]:
    """Extract raw features for a list of connections (one array each)."""
    extractor = RawFeatureExtractor()
    return [extractor.extract_connection(connection) for connection in connections]
