"""Context-profile construction and stacking (Stage (b) of CLAP).

A *context profile* fuses, for each packet:

* the scaled raw header features (#1-#32),
* the amplification features (#33-#51), and
* the GRU update/reset gate activations for that packet (#52-#115),

giving a 115-dimensional vector (Equation 2 of the paper).  Profiles of
``stack_length`` consecutive packets are then concatenated in a sliding window
to form *stacked profiles* (345 dimensions for the default stack of 3), which
are what the Stage-(c) autoencoder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.features.amplification import AmplificationFeatureExtractor, FeatureRanges
from repro.features.fields import RawFeatureExtractor
from repro.features.scaling import FeatureScaler
from repro.netstack.flow import Connection
from repro.nn.gru import GRUSequenceClassifier


@dataclass
class ConnectionProfiles:
    """All per-packet artefacts of one connection."""

    raw_features: np.ndarray  # (n, 32), unscaled
    scaled_features: np.ndarray  # (n, 32)
    amplification: np.ndarray  # (n, 19)
    update_gates: np.ndarray  # (n, hidden)
    reset_gates: np.ndarray  # (n, hidden)
    profiles: np.ndarray  # (n, 115)

    def __len__(self) -> int:
        return self.profiles.shape[0]


def stacked_window_count(packet_count: int, stack_length: int) -> int:
    """Number of stacked-profile windows a connection of ``packet_count`` yields."""
    if stack_length < 1:
        raise ValueError(f"stack_length must be >= 1, got {stack_length}")
    if packet_count == 0:
        return 0
    return max(packet_count - stack_length + 1, 1)


def stack_profiles(
    profiles: np.ndarray, stack_length: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Concatenate consecutive profiles in a sliding window.

    For ``n`` profiles and a stack of ``t`` the result has shape
    ``(max(n - t + 1, 1), t * width)``; connections shorter than the stack are
    zero-padded on the right so that even 1-2 packet connections produce one
    stacked profile.

    ``out``, when given, must be a zero-initialised C-contiguous array of the
    result shape; the windows are written into it directly (the batched
    profile builder passes slices of one preallocated matrix to avoid a
    temporary per connection).
    """
    if stack_length < 1:
        raise ValueError(f"stack_length must be >= 1, got {stack_length}")
    count, width = profiles.shape
    windows = stacked_window_count(count, stack_length)
    if out is None:
        out = np.zeros((windows, stack_length * width), dtype=np.float64)
    elif out.shape != (windows, stack_length * width):
        raise ValueError(f"out has shape {out.shape}, expected {(windows, stack_length * width)}")
    if count == 0:
        return out
    if count < stack_length:
        out[0].reshape(stack_length, width)[:count] = profiles
        return out
    # Window w concatenates profiles[w : w + stack]; one shifted block copy
    # per stack position fills every window without a per-window loop (and
    # without the sliding_window_view + transpose machinery, whose setup cost
    # dominates on the small per-connection matrices the streaming path
    # stacks).
    blocks = out.reshape(windows, stack_length, width)
    for position in range(stack_length):
        blocks[:, position, :] = profiles[position : position + windows]
    return out


def window_to_packet_indices(window_index: int, stack_length: int, packet_count: int) -> list[int]:
    """Packet indices covered by stacked-profile window ``window_index``."""
    last = min(window_index + stack_length, packet_count)
    return list(range(window_index, last))


@dataclass
class StackedProfileBatch:
    """Stacked profiles of many connections in one contiguous matrix.

    ``matrix`` concatenates every connection's stacked-profile windows in
    input order; connection ``i`` owns rows
    ``matrix[offsets[i] : offsets[i + 1]]``.  This is the hand-off format of
    the batched inference engine: one autoencoder call scores the whole
    matrix, and the offsets split the per-window errors back per connection.
    """

    matrix: np.ndarray  # (total_windows, stacked_profile_size)
    offsets: np.ndarray  # (n_connections + 1,), int64
    packet_counts: np.ndarray  # (n_connections,), int64

    def __len__(self) -> int:
        return self.packet_counts.shape[0]

    def segment(self, index: int) -> np.ndarray:
        """The stacked-profile rows of connection ``index`` (a view)."""
        return self.matrix[self.offsets[index] : self.offsets[index + 1]]


class ContextProfileBuilder:
    """Build (stacked) context profiles for connections.

    The builder owns the fitted scaler, the benign feature ranges and a
    reference to the trained Stage-(a) RNN, i.e. everything needed to map a
    connection to the autoencoder's input space.  Setting
    ``include_gate_weights=False`` and ``stack_length=1`` reproduces
    Baseline #1 (the context-agnostic variant).
    """

    def __init__(
        self,
        rnn: GRUSequenceClassifier | None,
        scaler: FeatureScaler,
        ranges: FeatureRanges,
        *,
        stack_length: int = 3,
        include_gate_weights: bool = True,
        include_amplification: bool = True,
    ) -> None:
        if include_gate_weights and rnn is None:
            raise ValueError("a trained RNN is required when gate weights are included")
        self.rnn = rnn
        self.scaler = scaler
        self.ranges = ranges
        self.stack_length = stack_length
        self.include_gate_weights = include_gate_weights
        self.include_amplification = include_amplification
        self.raw_extractor = RawFeatureExtractor()
        self.amplification_extractor = AmplificationFeatureExtractor(ranges)

    # -------------------------------------------------------------- dimensions
    @property
    def profile_size(self) -> int:
        """Width of a single-packet context profile."""
        size = self.scaler.minimums.shape[0]
        if self.include_amplification:
            size += self.amplification_extractor.feature_count
        if self.include_gate_weights and self.rnn is not None:
            size += 2 * self.rnn.hidden_size
        return size

    @property
    def stacked_profile_size(self) -> int:
        """Width of a stacked profile (the autoencoder input size)."""
        return self.profile_size * self.stack_length

    # -------------------------------------------------------------- profiles
    def connection_profiles(self, connection: Connection) -> ConnectionProfiles:
        """Per-packet context profiles for one connection."""
        raw = self.raw_extractor.extract_connection(connection)
        scaled = self.scaler.transform(raw)
        amplification = self.amplification_extractor.extract(raw)
        parts = [scaled]
        if self.include_amplification:
            parts.append(amplification)
        if self.include_gate_weights and self.rnn is not None and raw.shape[0] > 0:
            update_gates, reset_gates = self.rnn.gate_activations(scaled)
            parts.extend([update_gates, reset_gates])
        else:
            hidden = self.rnn.hidden_size if self.rnn is not None else 0
            update_gates = np.zeros((raw.shape[0], hidden))
            reset_gates = np.zeros((raw.shape[0], hidden))
            if self.include_gate_weights and self.rnn is not None:
                parts.extend([update_gates, reset_gates])
        profiles = np.hstack(parts) if raw.shape[0] > 0 else np.zeros((0, self.profile_size))
        return ConnectionProfiles(
            raw_features=raw,
            scaled_features=scaled,
            amplification=amplification,
            update_gates=update_gates,
            reset_gates=reset_gates,
            profiles=profiles,
        )

    def stacked_profiles(self, connection: Connection) -> np.ndarray:
        """Sliding-window stacked profiles for one connection."""
        profiles = self.connection_profiles(connection).profiles
        return stack_profiles(profiles, self.stack_length)

    # ------------------------------------------------------------- batch path
    def batch_connection_profiles(self, connections: Sequence[Connection]) -> list[ConnectionProfiles]:
        """Per-packet context profiles for many connections at once.

        Raw features are extracted per connection (packet parsing is
        inherently sequential), but everything downstream is vectorized:
        scaling and amplification run once over the concatenated packet
        matrix, and the GRU gate activations come from padded-batch forward
        passes instead of one tiny forward per connection.  The returned
        :class:`ConnectionProfiles` hold views into the shared matrices and
        match :meth:`connection_profiles` output per connection.
        """
        raws = self.raw_extractor.extract_packet_trains(
            [connection.packets for connection in connections]
        )
        counts = np.array([raw.shape[0] for raw in raws], dtype=np.int64)
        bounds = np.concatenate([[0], np.cumsum(counts)])
        raw_width = self.scaler.minimums.shape[0]
        concat_raw = (
            np.concatenate([raw for raw in raws if raw.shape[0] > 0], axis=0)
            if bounds[-1] > 0
            else np.zeros((0, raw_width), dtype=np.float64)
        )
        concat_scaled = self.scaler.transform(concat_raw)
        concat_amplification = self.amplification_extractor.extract(concat_raw)

        hidden = self.rnn.hidden_size if self.rnn is not None else 0
        use_gates = self.include_gate_weights and self.rnn is not None
        concat_update = concat_reset = None
        if use_gates:
            scaled_arrays = [
                concat_scaled[bounds[index] : bounds[index + 1]]
                for index in range(len(connections))
            ]
            # Prefer the concatenated fast path (gates land directly in one
            # (total_packets, hidden) matrix per gate, no per-connection
            # concatenate); fall back to the per-sequence protocol method for
            # duck-typed backends that only implement gate_activations_batch.
            concat_gates = getattr(self.rnn, "gate_activations_concat", None)
            if concat_gates is not None:
                concat_update, concat_reset, gate_bounds = concat_gates(scaled_arrays, counts)
                gate_pairs = [
                    (
                        concat_update[gate_bounds[index] : gate_bounds[index + 1]],
                        concat_reset[gate_bounds[index] : gate_bounds[index + 1]],
                    )
                    for index in range(len(connections))
                ]
            else:
                gate_pairs = self.rnn.gate_activations_batch(scaled_arrays, counts)
        else:
            gate_pairs = [
                (np.zeros((count, hidden)), np.zeros((count, hidden)))
                for count in counts
            ]

        parts = [concat_scaled]
        if self.include_amplification:
            parts.append(concat_amplification)
        if use_gates:
            # One concatenate per gate; the per-connection copy loop this
            # replaces scattered thousands of tiny row-range assignments.
            # (The fast path above already produced the concatenated gates.)
            if concat_update is None:
                if gate_pairs:
                    concat_update = np.concatenate([pair[0] for pair in gate_pairs], axis=0)
                    concat_reset = np.concatenate([pair[1] for pair in gate_pairs], axis=0)
                else:
                    concat_update = np.zeros((0, hidden), dtype=np.float64)
                    concat_reset = np.zeros((0, hidden), dtype=np.float64)
            parts.extend([concat_update, concat_reset])
        concat_profiles = (
            np.hstack(parts)
            if bounds[-1] > 0
            else np.zeros((0, self.profile_size), dtype=np.float64)
        )

        results: list[ConnectionProfiles] = []
        for index in range(len(connections)):
            start, stop = bounds[index], bounds[index + 1]
            results.append(
                ConnectionProfiles(
                    raw_features=raws[index],
                    scaled_features=concat_scaled[start:stop],
                    amplification=concat_amplification[start:stop],
                    update_gates=gate_pairs[index][0],
                    reset_gates=gate_pairs[index][1],
                    profiles=concat_profiles[start:stop],
                )
            )
        return results

    def batch_stacked_profiles(self, connections: Sequence[Connection]) -> StackedProfileBatch:
        """Stacked profiles of many connections as one matrix plus offsets.

        The result feeds a single autoencoder call for the whole batch; see
        :class:`StackedProfileBatch` for the layout contract.
        """
        profile_sets = self.batch_connection_profiles(connections)
        stack_length = self.stack_length
        packet_counts = np.array([len(profiles) for profiles in profile_sets], dtype=np.int64)
        window_counts = np.array(
            [stacked_window_count(int(count), stack_length) for count in packet_counts],
            dtype=np.int64,
        )
        offsets = np.concatenate([[0], np.cumsum(window_counts)]).astype(np.int64)
        matrix = np.zeros((int(offsets[-1]), self.stacked_profile_size), dtype=np.float64)
        for index, profiles in enumerate(profile_sets):
            if window_counts[index] > 0:
                stack_profiles(
                    profiles.profiles,
                    stack_length,
                    out=matrix[int(offsets[index]) : int(offsets[index + 1])],
                )
        return StackedProfileBatch(matrix=matrix, offsets=offsets, packet_counts=packet_counts)

    def training_matrix(self, connections: Sequence[Connection]) -> np.ndarray:
        """Stacked profiles of many connections, vertically concatenated."""
        return self.batch_stacked_profiles(connections).matrix
