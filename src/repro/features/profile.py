"""Context-profile construction and stacking (Stage (b) of CLAP).

A *context profile* fuses, for each packet:

* the scaled raw header features (#1-#32),
* the amplification features (#33-#51), and
* the GRU update/reset gate activations for that packet (#52-#115),

giving a 115-dimensional vector (Equation 2 of the paper).  Profiles of
``stack_length`` consecutive packets are then concatenated in a sliding window
to form *stacked profiles* (345 dimensions for the default stack of 3), which
are what the Stage-(c) autoencoder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.features.amplification import AmplificationFeatureExtractor, FeatureRanges
from repro.features.fields import RawFeatureExtractor
from repro.features.scaling import FeatureScaler
from repro.features.schema import CONTEXT_PROFILE_SIZE, NUM_PACKET_FEATURES
from repro.netstack.flow import Connection
from repro.nn.gru import GRUSequenceClassifier


@dataclass
class ConnectionProfiles:
    """All per-packet artefacts of one connection."""

    raw_features: np.ndarray  # (n, 32), unscaled
    scaled_features: np.ndarray  # (n, 32)
    amplification: np.ndarray  # (n, 19)
    update_gates: np.ndarray  # (n, hidden)
    reset_gates: np.ndarray  # (n, hidden)
    profiles: np.ndarray  # (n, 115)

    def __len__(self) -> int:
        return self.profiles.shape[0]


def stack_profiles(profiles: np.ndarray, stack_length: int) -> np.ndarray:
    """Concatenate consecutive profiles in a sliding window.

    For ``n`` profiles and a stack of ``t`` the result has shape
    ``(max(n - t + 1, 1), t * width)``; connections shorter than the stack are
    zero-padded on the right so that even 1-2 packet connections produce one
    stacked profile.
    """
    if stack_length < 1:
        raise ValueError(f"stack_length must be >= 1, got {stack_length}")
    count, width = profiles.shape
    if count == 0:
        return np.zeros((0, stack_length * width), dtype=np.float64)
    if count < stack_length:
        padded = np.zeros((stack_length, width), dtype=np.float64)
        padded[:count] = profiles
        return padded.reshape(1, stack_length * width)
    windows = count - stack_length + 1
    stacked = np.zeros((windows, stack_length * width), dtype=np.float64)
    for offset in range(stack_length):
        stacked[:, offset * width : (offset + 1) * width] = profiles[offset : offset + windows]
    return stacked


def window_to_packet_indices(window_index: int, stack_length: int, packet_count: int) -> List[int]:
    """Packet indices covered by stacked-profile window ``window_index``."""
    last = min(window_index + stack_length, packet_count)
    return list(range(window_index, last))


class ContextProfileBuilder:
    """Build (stacked) context profiles for connections.

    The builder owns the fitted scaler, the benign feature ranges and a
    reference to the trained Stage-(a) RNN, i.e. everything needed to map a
    connection to the autoencoder's input space.  Setting
    ``include_gate_weights=False`` and ``stack_length=1`` reproduces
    Baseline #1 (the context-agnostic variant).
    """

    def __init__(
        self,
        rnn: Optional[GRUSequenceClassifier],
        scaler: FeatureScaler,
        ranges: FeatureRanges,
        *,
        stack_length: int = 3,
        include_gate_weights: bool = True,
        include_amplification: bool = True,
    ) -> None:
        if include_gate_weights and rnn is None:
            raise ValueError("a trained RNN is required when gate weights are included")
        self.rnn = rnn
        self.scaler = scaler
        self.ranges = ranges
        self.stack_length = stack_length
        self.include_gate_weights = include_gate_weights
        self.include_amplification = include_amplification
        self.raw_extractor = RawFeatureExtractor()
        self.amplification_extractor = AmplificationFeatureExtractor(ranges)

    # -------------------------------------------------------------- dimensions
    @property
    def profile_size(self) -> int:
        """Width of a single-packet context profile."""
        size = self.scaler.minimums.shape[0]
        if self.include_amplification:
            size += self.amplification_extractor.feature_count
        if self.include_gate_weights and self.rnn is not None:
            size += 2 * self.rnn.hidden_size
        return size

    @property
    def stacked_profile_size(self) -> int:
        """Width of a stacked profile (the autoencoder input size)."""
        return self.profile_size * self.stack_length

    # -------------------------------------------------------------- profiles
    def connection_profiles(self, connection: Connection) -> ConnectionProfiles:
        """Per-packet context profiles for one connection."""
        raw = self.raw_extractor.extract_connection(connection)
        scaled = self.scaler.transform(raw)
        amplification = self.amplification_extractor.extract(raw)
        parts = [scaled]
        if self.include_amplification:
            parts.append(amplification)
        if self.include_gate_weights and self.rnn is not None and raw.shape[0] > 0:
            update_gates, reset_gates = self.rnn.gate_activations(scaled)
            parts.extend([update_gates, reset_gates])
        else:
            hidden = self.rnn.hidden_size if self.rnn is not None else 0
            update_gates = np.zeros((raw.shape[0], hidden))
            reset_gates = np.zeros((raw.shape[0], hidden))
            if self.include_gate_weights and self.rnn is not None:
                parts.extend([update_gates, reset_gates])
        profiles = np.hstack(parts) if raw.shape[0] > 0 else np.zeros((0, self.profile_size))
        return ConnectionProfiles(
            raw_features=raw,
            scaled_features=scaled,
            amplification=amplification,
            update_gates=update_gates,
            reset_gates=reset_gates,
            profiles=profiles,
        )

    def stacked_profiles(self, connection: Connection) -> np.ndarray:
        """Sliding-window stacked profiles for one connection."""
        profiles = self.connection_profiles(connection).profiles
        return stack_profiles(profiles, self.stack_length)

    def training_matrix(self, connections: Sequence[Connection]) -> np.ndarray:
        """Stacked profiles of many connections, vertically concatenated."""
        blocks = [self.stacked_profiles(connection) for connection in connections]
        blocks = [block for block in blocks if block.shape[0] > 0]
        if not blocks:
            return np.zeros((0, self.stacked_profile_size))
        return np.vstack(blocks)
