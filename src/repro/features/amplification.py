"""Amplification features (features #33-#51 of Table 7).

Some evasion strategies perturb a header field by an amount that is numerically
tiny after scaling (e.g. IP version 4 -> 5, a TTL of 2, a data offset of 4) and
would barely move the autoencoder's reconstruction error.  The paper therefore
augments the packet features with two kinds of hand-crafted *amplification
features*:

* **out-of-range indicators** -- one binary flag per numeric header feature,
  set when the value falls outside the range observed in benign training
  traffic;
* an **equivalence-relation feature** -- whether the expected identity
  ``TCP payload length = IP total length - IP header length - TCP data offset``
  holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.features.schema import (
    NUM_AMPLIFICATION_FEATURES,
    NUM_RAW_FEATURES,
    NUMERIC_INDICES,
)


@dataclass
class FeatureRanges:
    """Per-feature [min, max] ranges observed on benign training traffic."""

    minimums: np.ndarray
    maximums: np.ndarray

    @classmethod
    def fit(cls, feature_arrays: Sequence[np.ndarray]) -> "FeatureRanges":
        """Fit ranges over a list of per-connection raw feature arrays."""
        stacked = np.vstack([array for array in feature_arrays if array.size > 0])
        if stacked.shape[1] != NUM_RAW_FEATURES:
            raise ValueError(
                f"expected {NUM_RAW_FEATURES} raw features, got {stacked.shape[1]}"
            )
        return cls(minimums=stacked.min(axis=0), maximums=stacked.max(axis=0))

    def out_of_range(self, features: np.ndarray, column: int) -> np.ndarray:
        """Binary out-of-range indicator for ``column`` of ``features``."""
        low = self.minimums[column]
        high = self.maximums[column]
        values = features[:, column]
        return ((values < low) | (values > high)).astype(np.float64)

    def to_arrays(self) -> dict:
        return {"minimums": self.minimums, "maximums": self.maximums}

    @classmethod
    def from_arrays(cls, arrays: dict) -> "FeatureRanges":
        return cls(minimums=np.asarray(arrays["minimums"]), maximums=np.asarray(arrays["maximums"]))


class AmplificationFeatureExtractor:
    """Compute the 19 amplification features from raw features and ranges."""

    feature_count = NUM_AMPLIFICATION_FEATURES

    def __init__(self, ranges: FeatureRanges) -> None:
        self.ranges = ranges

    def extract(self, raw_features: np.ndarray) -> np.ndarray:
        """Return an array of shape ``(n_packets, 19)``.

        ``raw_features`` is the output of
        :class:`~repro.features.fields.RawFeatureExtractor` for one connection.
        """
        count = raw_features.shape[0]
        output = np.zeros((count, NUM_AMPLIFICATION_FEATURES), dtype=np.float64)
        if count == 0:
            return output
        for position, column in enumerate(NUMERIC_INDICES):
            output[:, position] = self.ranges.out_of_range(raw_features, column)
        output[:, -1] = self._payload_length_violation(raw_features)
        return output

    @staticmethod
    def _payload_length_violation(raw_features: np.ndarray) -> np.ndarray:
        """1.0 where the payload-length equivalence relation is broken.

        The relation (paper Table 7, feature #51):
        ``payload length == IP total length - IP header length - TCP data offset``
        with the data offset converted from 32-bit words to bytes.
        """
        payload_length = raw_features[:, 16]
        ip_total_length = raw_features[:, 25]
        ip_header_length = raw_features[:, 27]
        data_offset_bytes = raw_features[:, 3] * 4.0
        expected = ip_total_length - ip_header_length - data_offset_bytes
        return (np.abs(expected - payload_length) > 0.5).astype(np.float64)
