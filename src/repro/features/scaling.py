"""Feature scaling for the neural models.

Raw header fields span wildly different magnitudes (flags in {0,1}, sequence
deltas in the millions).  Both the RNN and the autoencoder need bounded inputs
to train stably, so numeric columns are passed through a signed ``log1p`` and
then min-max normalised to [0, 1] using statistics from the *benign training
corpus only* (the scaler is part of the learned model, never refit on test
traffic).  Binary and categorical columns pass through unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.features.schema import NUM_RAW_FEATURES, NUMERIC_INDICES


def signed_log1p(values: np.ndarray) -> np.ndarray:
    """``sign(x) * log1p(|x|)`` — compresses heavy-tailed counters."""
    return np.sign(values) * np.log1p(np.abs(values))


@dataclass
class FeatureScaler:
    """Column-wise signed-log + min-max scaler fitted on benign traffic."""

    minimums: np.ndarray
    maximums: np.ndarray
    log_columns: np.ndarray  # boolean mask of columns that get signed_log1p
    clip: float = 3.0

    # -------------------------------------------------------------------- fit
    @classmethod
    def fit(
        cls,
        feature_arrays: Sequence[np.ndarray],
        *,
        log_columns: Sequence[int] | None = None,
        clip: float = 3.0,
    ) -> "FeatureScaler":
        """Fit on a list of per-connection feature arrays."""
        stacked = np.vstack([array for array in feature_arrays if array.size > 0])
        width = stacked.shape[1]
        if log_columns is None and width == NUM_RAW_FEATURES:
            log_columns = NUMERIC_INDICES
        mask = np.zeros(width, dtype=bool)
        if log_columns is not None:
            mask[list(log_columns)] = True
        transformed = stacked.astype(np.float64).copy()
        transformed[:, mask] = signed_log1p(transformed[:, mask])
        return cls(
            minimums=transformed.min(axis=0),
            maximums=transformed.max(axis=0),
            log_columns=mask,
            clip=clip,
        )

    # -------------------------------------------------------------- transform
    def transform(self, features: np.ndarray) -> np.ndarray:
        """Scale ``features`` (n, width) to roughly [0, 1].

        Values outside the training range map outside [0, 1] (clipped at
        ``±clip``) — that headroom is what lets anomalous values stand out to
        the autoencoder while keeping activations bounded.
        """
        if features.size == 0:
            return features.astype(np.float64).copy()
        transformed = features.astype(np.float64).copy()
        transformed[:, self.log_columns] = signed_log1p(transformed[:, self.log_columns])
        span = self.maximums - self.minimums
        # Columns constant in training keep their offset-from-minimum so a
        # deviating test value still registers (e.g. IP version 4 -> 5).
        safe_span = np.where(span > 0, span, 1.0)
        scaled = (transformed - self.minimums) / safe_span
        return np.clip(scaled, -self.clip, self.clip)

    def transform_all(self, feature_arrays: Sequence[np.ndarray]) -> list:
        return [self.transform(array) for array in feature_arrays]

    # ------------------------------------------------------------ persistence
    def to_arrays(self) -> dict:
        return {
            "minimums": self.minimums,
            "maximums": self.maximums,
            "log_columns": self.log_columns.astype(np.int64),
            "clip": np.array([self.clip]),
        }

    @classmethod
    def from_arrays(cls, arrays: dict) -> "FeatureScaler":
        return cls(
            minimums=np.asarray(arrays["minimums"], dtype=np.float64),
            maximums=np.asarray(arrays["maximums"], dtype=np.float64),
            log_columns=np.asarray(arrays["log_columns"]).astype(bool),
            clip=float(np.asarray(arrays["clip"]).reshape(-1)[0]),
        )
