"""Feature extraction: Table 7 features, amplification and context profiles."""

from repro.features.amplification import AmplificationFeatureExtractor, FeatureRanges
from repro.features.fields import RawFeatureExtractor, extract_raw_features
from repro.features.profile import (
    ConnectionProfiles,
    ContextProfileBuilder,
    StackedProfileBatch,
    stack_profiles,
    stacked_window_count,
    window_to_packet_indices,
)
from repro.features.scaling import FeatureScaler, signed_log1p
from repro.features.schema import (
    CONTEXT_PROFILE_SIZE,
    HIDDEN_SIZE,
    NUM_AMPLIFICATION_FEATURES,
    NUM_GATE_FEATURES,
    NUM_PACKET_FEATURES,
    NUM_RAW_FEATURES,
    NUMERIC_INDICES,
    FeatureGroup,
    FeatureSpec,
    FeatureType,
    all_feature_specs,
    amplification_feature_specs,
    feature_name,
    gate_feature_specs,
    raw_feature_specs,
)

__all__ = [
    "AmplificationFeatureExtractor",
    "CONTEXT_PROFILE_SIZE",
    "ConnectionProfiles",
    "ContextProfileBuilder",
    "FeatureGroup",
    "FeatureRanges",
    "FeatureScaler",
    "FeatureSpec",
    "FeatureType",
    "HIDDEN_SIZE",
    "NUMERIC_INDICES",
    "NUM_AMPLIFICATION_FEATURES",
    "NUM_GATE_FEATURES",
    "NUM_PACKET_FEATURES",
    "NUM_RAW_FEATURES",
    "RawFeatureExtractor",
    "StackedProfileBatch",
    "all_feature_specs",
    "amplification_feature_specs",
    "extract_raw_features",
    "feature_name",
    "gate_feature_specs",
    "raw_feature_specs",
    "signed_log1p",
    "stack_profiles",
    "stacked_window_count",
    "window_to_packet_indices",
]
