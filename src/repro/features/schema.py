"""The context-profile feature schema (Table 7 of the paper).

Every feature of the 115-dimensional context profile is registered here with
its index, type and semantics, so the rest of the pipeline (extraction,
amplification, fusion, the Table-7 benchmark dump) shares one source of truth.

Layout (1-based indices as printed in the paper; arrays in code are 0-based):

* ``1..25``  TCP-layer features
* ``26..32`` IP-layer features
* ``33..51`` amplification features (not fed to the RNN)
* ``52..83`` GRU update-gate activations
* ``84..115`` GRU reset-gate activations
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FeatureType(enum.Enum):
    BINARY = "Binary"
    INTEGER = "Integer"
    CATEGORICAL = "Categorical"
    FLOAT = "Float"


class FeatureGroup(enum.Enum):
    TCP = "TCP Layer Features"
    IP = "IP Layer Features"
    AMPLIFICATION = "Amplification Features"
    GATE = "Gate Weights from GRU"


@dataclass(frozen=True)
class FeatureSpec:
    """One row of Table 7."""

    index: int  # 1-based, as in the paper
    name: str
    feature_type: FeatureType
    group: FeatureGroup
    numeric: bool = False  # True when an out-of-range amplification indicator exists


# --------------------------------------------------------------------------
# Raw header features (1..32); this is the RNN's input feature set.
# --------------------------------------------------------------------------

_RAW_SPECS: list[FeatureSpec] = [
    FeatureSpec(1, "Packet direction", FeatureType.BINARY, FeatureGroup.TCP),
    FeatureSpec(2, "SEQ number (incremental)", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(3, "ACK number (incremental)", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(4, "Data Offset", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(5, "Flag: FIN", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(6, "Flag: SYN", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(7, "Flag: RST", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(8, "Flag: PSH", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(9, "Flag: ACK", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(10, "Flag: URG", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(11, "Flag: ECE", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(12, "Flag: CWR", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(13, "Flag: NS", FeatureType.CATEGORICAL, FeatureGroup.TCP),
    FeatureSpec(14, "Window Size", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(15, "Checksum validity", FeatureType.BINARY, FeatureGroup.TCP),
    FeatureSpec(16, "Urgent Pointer", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(17, "Payload Length", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(18, "Option: Maximum Segment Size", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(19, "Option: Timestamp Value (TSVal)", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(20, "Option: Timestamp Echo Reply (TSecr)", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(21, "Option: Window Scale", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(22, "Option: User Timeout", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(23, "Option: MD5 Header Validity", FeatureType.BINARY, FeatureGroup.TCP),
    FeatureSpec(24, "TCP Timestamp (delta)", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(25, "Frame Timestamp (relative)", FeatureType.INTEGER, FeatureGroup.TCP, numeric=True),
    FeatureSpec(26, "IP Length", FeatureType.INTEGER, FeatureGroup.IP, numeric=True),
    FeatureSpec(27, "IP Time-To-Live", FeatureType.INTEGER, FeatureGroup.IP, numeric=True),
    FeatureSpec(28, "IP Header Length", FeatureType.INTEGER, FeatureGroup.IP, numeric=True),
    FeatureSpec(29, "IP Checksum validity", FeatureType.BINARY, FeatureGroup.IP),
    FeatureSpec(30, "IP Version", FeatureType.INTEGER, FeatureGroup.IP, numeric=True),
    FeatureSpec(31, "IP Type of Service", FeatureType.INTEGER, FeatureGroup.IP, numeric=True),
    FeatureSpec(32, "Existence of non-standard IP options", FeatureType.BINARY, FeatureGroup.IP),
]

NUM_RAW_FEATURES = len(_RAW_SPECS)  # 32, the RNN input size (Table 6)

# Numeric feature indices (0-based) that receive out-of-range amplification
# indicators; 13 TCP + 5 IP = 18, plus the payload-length equivalence check
# gives the 19 amplification features at indices 33..51 of Table 7.
NUMERIC_TCP_INDICES: tuple[int, ...] = tuple(
    spec.index - 1 for spec in _RAW_SPECS if spec.numeric and spec.group is FeatureGroup.TCP
)
NUMERIC_IP_INDICES: tuple[int, ...] = tuple(
    spec.index - 1 for spec in _RAW_SPECS if spec.numeric and spec.group is FeatureGroup.IP
)
NUMERIC_INDICES: tuple[int, ...] = NUMERIC_TCP_INDICES + NUMERIC_IP_INDICES

_AMPLIFICATION_SPECS: list[FeatureSpec] = [
    FeatureSpec(
        33 + position,
        f"Out-of-range indicator for TCP feature #{index + 1}",
        FeatureType.BINARY,
        FeatureGroup.AMPLIFICATION,
    )
    for position, index in enumerate(NUMERIC_TCP_INDICES)
] + [
    FeatureSpec(
        33 + len(NUMERIC_TCP_INDICES) + position,
        f"Out-of-range indicator for IP feature #{index + 1}",
        FeatureType.BINARY,
        FeatureGroup.AMPLIFICATION,
    )
    for position, index in enumerate(NUMERIC_IP_INDICES)
] + [
    FeatureSpec(
        33 + len(NUMERIC_INDICES),
        "TCP Payload Length correctness (#17 = #26 - #28 - #4)",
        FeatureType.BINARY,
        FeatureGroup.AMPLIFICATION,
    )
]

NUM_AMPLIFICATION_FEATURES = len(_AMPLIFICATION_SPECS)  # 19
NUM_PACKET_FEATURES = NUM_RAW_FEATURES + NUM_AMPLIFICATION_FEATURES  # 51

HIDDEN_SIZE = 32  # GRU hidden/gate size (Table 6)

_GATE_SPECS: list[FeatureSpec] = [
    FeatureSpec(52 + i, f"Update gate activation [{i}]", FeatureType.FLOAT, FeatureGroup.GATE)
    for i in range(HIDDEN_SIZE)
] + [
    FeatureSpec(84 + i, f"Reset gate activation [{i}]", FeatureType.FLOAT, FeatureGroup.GATE)
    for i in range(HIDDEN_SIZE)
]

NUM_GATE_FEATURES = len(_GATE_SPECS)  # 64
CONTEXT_PROFILE_SIZE = NUM_PACKET_FEATURES + NUM_GATE_FEATURES  # 115

ALL_SPECS: list[FeatureSpec] = _RAW_SPECS + _AMPLIFICATION_SPECS + _GATE_SPECS


def raw_feature_specs() -> list[FeatureSpec]:
    """Specs for the 32 raw header features (the RNN input)."""
    return list(_RAW_SPECS)


def amplification_feature_specs() -> list[FeatureSpec]:
    """Specs for the 19 amplification features."""
    return list(_AMPLIFICATION_SPECS)


def gate_feature_specs() -> list[FeatureSpec]:
    """Specs for the 64 gate-weight features."""
    return list(_GATE_SPECS)


def all_feature_specs() -> list[FeatureSpec]:
    """The full 115-entry context-profile schema, ordered by index."""
    return list(ALL_SPECS)


def feature_name(index: int) -> str:
    """Name of the 1-based feature ``index`` (paper numbering)."""
    return ALL_SPECS[index - 1].name
