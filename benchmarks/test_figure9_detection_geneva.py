"""Figure 9: per-strategy detection AUC-ROC for the Geneva [4] strategies."""

from benchmarks.figure_helpers import check_detection_figure
from repro.attacks.base import AttackSource
from repro.evaluation.runner import CLAP_NAME


def test_figure9_detection_geneva(experiment, benchmark):
    clap = experiment.results[CLAP_NAME]
    benchmark(lambda: [r.auc for r in clap.by_source(AttackSource.GENEVA)])
    check_detection_figure(
        experiment.results, AttackSource.GENEVA, "figure9_detection_geneva.txt"
    )


def test_figure9_geneva_is_the_easiest_source_for_clap(experiment, benchmark):
    """Paper shape: blind Geneva tampering is detected best (0.988 mean AUC),
    because every data packet of the connection is altered."""
    clap = experiment.results[CLAP_NAME]
    geneva = benchmark(lambda: clap.mean_auc_by_source(AttackSource.GENEVA))
    assert geneva > 0.9
    assert geneva >= clap.mean_auc_by_source(AttackSource.SYMTCP) - 0.05
