"""Table 4: statistics of the benign dataset (MAWI stand-in).

The paper uses 540,353 TCP/IPv4 packets over 37,622 connections with an
~83/17 train/test split.  The synthetic corpus is smaller by default
(CLAP_BENCH_SCALE rescales it); what must hold is the structure: a sizeable
benign corpus with the same split ratio and consistent packet accounting.
"""

from benchmarks.conftest import write_result
from repro.evaluation.reporting import render_table
from repro.traffic.dataset import BenignDataset


def test_table4_dataset_statistics(experiment, benchmark):
    dataset = experiment.dataset

    statistics = benchmark(dataset.statistics)

    rows = [[name, f"{value:,}"] for name, value in statistics.as_rows()]
    text = render_table(["Quantity", "Value"], rows)
    write_result("table4_dataset_statistics.txt", text)

    assert statistics.total_packets == statistics.training_packets + statistics.testing_packets
    assert statistics.total_connections == (
        statistics.training_connections + statistics.testing_connections
    )
    # The paper's 83/17 connection split.
    train_fraction = statistics.training_connections / statistics.total_connections
    assert 0.75 <= train_fraction <= 0.9
    assert statistics.total_packets > 1000


def test_table4_dataset_is_reproducible(experiment, benchmark):
    """The same seed regenerates the identical corpus (dataset provenance)."""
    reference = experiment.dataset.statistics()

    def rebuild():
        from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

        return BenignDataset.synthesize(
            connection_count=max(int(140 * BENCH_SCALE), 60),
            seed=BENCH_SEED,
            train_fraction=0.83,
        ).statistics()

    rebuilt = benchmark(rebuild)
    assert rebuilt == reference
