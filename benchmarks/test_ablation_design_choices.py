"""Ablations of CLAP's design choices (discussed throughout Section 3.3).

Three design decisions are ablated on a fixed subset of strategies:

1. **Adversarial-score summarisation** — the paper's "localize-and-estimate"
   windowed mean versus the plain maximum and the global mean of the
   reconstruction errors (no retraining required).
2. **Amplification features** — removing the out-of-range / equivalence
   features that amplify subtle intra-packet violations.
3. **Profile stacking** — using single-packet context profiles (stack = 1,
   gate weights kept) instead of the 3-packet stacked profiles.
"""

import numpy as np

from benchmarks.conftest import bench_config, write_result
from repro.attacks.base import get_strategy
from repro.attacks.injector import AttackInjector
from repro.core.detector import adversarial_score
from repro.core.pipeline import Clap
from repro.evaluation.metrics import auc_roc
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import CLAP_NAME

ABLATION_STRATEGIES = [
    "Snort: Injected RST Pure",                          # inter-packet, injection
    "GFW: Injected FIN-ACK Bad ACK Num",                 # inter-packet, injection
    "Zeek: Data Packet (ACK) Bad SEQ",                   # inter-packet, modification
    "Invalid IP Version (Min)",                          # intra-packet, subtle value
    "Low TTL (Max)",                                     # intra-packet, repeated
    "Bad Payload Length / Bad TCP Checksum",             # intra-packet, equivalence
]


def _auc_for(detector, connections, adversarial_sets, scorer=None):
    if scorer is None:
        benign = detector.score_connections(connections)
    else:
        benign = np.array([scorer(detector.window_errors(c)) for c in connections])
    aucs = {}
    for name, adversarial in adversarial_sets.items():
        if scorer is None:
            scores = detector.score_connections(adversarial)
        else:
            scores = np.array([scorer(detector.window_errors(c)) for c in adversarial])
        aucs[name] = auc_roc(scores, benign)
    return aucs


def _adversarial_sets(connections):
    injector = AttackInjector(seed=77)
    return {
        name: [injector.attack_connection(get_strategy(name), c).connection for c in connections]
        for name in ABLATION_STRATEGIES
    }


def test_ablation_adversarial_score_summarisation(experiment, benchmark):
    """Localize-and-estimate vs max vs global mean (no retraining needed)."""
    clap = experiment.runner.detectors[CLAP_NAME]
    connections = experiment.runner.test_connections
    adversarial_sets = _adversarial_sets(connections)

    scorers = {
        "localize-and-estimate (paper)": lambda e: adversarial_score(e, 5),
        "maximum error": lambda e: float(e.max()) if e.size else 0.0,
        "global mean error": lambda e: float(e.mean()) if e.size else 0.0,
    }
    measured = {}
    for label, scorer in scorers.items():
        measured[label] = _auc_for(clap, connections, adversarial_sets, scorer)
    benchmark(lambda: _auc_for(clap, connections[:4], adversarial_sets, scorers["maximum error"]))

    rows = [
        [label] + [f"{measured[label][name]:.3f}" for name in ABLATION_STRATEGIES]
        + [f"{np.mean(list(measured[label].values())):.3f}"]
        for label in scorers
    ]
    text = render_table(["Score summarisation"] + ABLATION_STRATEGIES + ["mean"], rows)
    write_result("ablation_score_summarisation.txt", text)

    means = {label: np.mean(list(values.values())) for label, values in measured.items()}
    # The paper's choice must not be worse than the global mean, and must be
    # competitive with the plain maximum (it was chosen for robustness).
    assert means["localize-and-estimate (paper)"] >= means["global mean error"] - 0.02
    assert means["localize-and-estimate (paper)"] >= means["maximum error"] - 0.05


def test_ablation_amplification_and_stacking(experiment, benchmark):
    """Remove amplification features / profile stacking and re-train."""
    connections = experiment.runner.test_connections
    adversarial_sets = _adversarial_sets(connections)
    train = experiment.dataset.train

    def build_variant(include_amplification: bool, stack_length: int) -> Clap:
        config = bench_config()
        config.autoencoder.epochs = 60
        config.detector.include_amplification = include_amplification
        config.detector.stack_length = stack_length
        variant = Clap(config)
        variant.fit(train)
        return variant

    no_amplification = build_variant(include_amplification=False, stack_length=3)
    no_stacking = build_variant(include_amplification=True, stack_length=1)
    full = experiment.runner.detectors[CLAP_NAME]

    measured = {
        "full CLAP (paper)": _auc_for(full, connections, adversarial_sets),
        "without amplification features": _auc_for(no_amplification, connections, adversarial_sets),
        "without profile stacking": _auc_for(no_stacking, connections, adversarial_sets),
    }
    benchmark(lambda: full.score_connections(connections[:4]))

    rows = [
        [label] + [f"{values[name]:.3f}" for name in ABLATION_STRATEGIES]
        + [f"{np.mean(list(values.values())):.3f}"]
        for label, values in measured.items()
    ]
    text = render_table(["Variant"] + ABLATION_STRATEGIES + ["mean"], rows)
    write_result("ablation_amplification_stacking.txt", text)

    means = {label: np.mean(list(values.values())) for label, values in measured.items()}
    subtle = "Invalid IP Version (Min)"
    # Amplification features exist to expose subtle intra-packet violations:
    # removing them must not improve that case, and the full design must stay
    # at least on par overall.
    assert measured["full CLAP (paper)"][subtle] >= measured["without amplification features"][subtle] - 0.05
    assert means["full CLAP (paper)"] >= means["without amplification features"] - 0.05
    assert means["full CLAP (paper)"] >= means["without profile stacking"] - 0.05
