"""Table 8: per-context categorisation of the 73 evasion strategies.

The paper derives the categorisation empirically: a strategy counts as an
inter-packet context violation when CLAP's AUC exceeds Baseline #1's by more
than TH_inter = 0.15, otherwise as an intra-packet violation.  The benchmark
recomputes the categorisation from the measured AUC values and regenerates the
table.
"""

from benchmarks.conftest import write_result
from repro.attacks.base import ContextCategory
from repro.attacks.taxonomy import categorize_from_auc, taxonomy_counts
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import BASELINE1_NAME, CLAP_NAME


def test_table8_strategy_taxonomy(experiment, benchmark):
    results = experiment.results
    clap_auc = results[CLAP_NAME].auc_by_strategy()
    baseline_auc = results[BASELINE1_NAME].auc_by_strategy()

    entries = benchmark(lambda: categorize_from_auc(clap_auc, baseline_auc, threshold=0.15))

    rows = [
        [
            entry.strategy_name,
            entry.source.citation,
            entry.category.value,
            f"{entry.auc_clap:.3f}",
            f"{entry.auc_baseline1:.3f}",
            f"{entry.disparity:+.3f}",
        ]
        for entry in sorted(entries, key=lambda e: -e.disparity)
    ]
    text = render_table(
        ["Strategy", "From", "Empirical category", "CLAP AUC", "B#1 AUC", "Disparity"], rows
    )
    write_result("table8_strategy_taxonomy.txt", text)

    assert len(entries) == 73
    counts = taxonomy_counts(entries)
    # The paper finds 24-27 inter-packet and 46-49 intra-packet strategies at
    # TH_inter = 0.15.  On the synthetic corpus Baseline #1 is stronger than
    # in the paper, so fewer strategies cross the 0.15-disparity bar; the
    # empirical rule must still find at least one of each kind.
    assert counts[ContextCategory.INTER_PACKET] >= 1
    assert counts[ContextCategory.INTRA_PACKET] >= 40

    # Strategies empirically categorised as inter-packet are exactly those
    # with a large CLAP-over-Baseline#1 advantage.
    for entry in entries:
        if entry.category is ContextCategory.INTER_PACKET:
            assert entry.disparity > 0.15
        else:
            assert entry.disparity <= 0.15
