"""Table 6: the model hyper-parameters used by CLAP and the baselines.

This benchmark dumps the configuration actually used by the harness next to
the values printed in the paper, and asserts that every architectural constant
(model sizes) matches Table 6 exactly; training budgets (epochs) may deviate
and the deviation is visible in the rendered table.
"""

from benchmarks.conftest import write_result
from repro.baselines.intra_only import baseline1_config
from repro.baselines.kitsune import NUM_KITSUNE_FEATURES, KitsuneDetector
from repro.core.config import ClapConfig
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import BASELINE2_NAME
from repro.features.schema import CONTEXT_PROFILE_SIZE


def test_table6_hyperparameters(experiment, benchmark):
    config = experiment.config
    paper = ClapConfig.paper()

    description = benchmark(config.describe)

    baseline1 = baseline1_config()
    kitsune: KitsuneDetector = experiment.runner.detectors[BASELINE2_NAME]
    rows = [
        ["CLAP RNN: # layers", str(description["rnn.layers"]), "1"],
        ["CLAP RNN: input size", str(description["rnn.input_size"]), "32"],
        ["CLAP RNN: hidden (gate) size", str(description["rnn.hidden_size"]), "32"],
        ["CLAP RNN: # epochs", str(description["rnn.epochs"]), "30"],
        ["CLAP AE: # layers", str(description["autoencoder.layers"]), "7"],
        ["CLAP AE: input size", str(CONTEXT_PROFILE_SIZE * config.detector.stack_length), "345"],
        ["CLAP AE: profile stack length", str(description["detector.stack_length"]), "3"],
        ["CLAP AE: bottleneck size", str(description["autoencoder.bottleneck"]), "40"],
        ["CLAP AE: # epochs", str(description["autoencoder.epochs"]), str(paper.autoencoder.epochs)],
        ["Baseline #1 AE: # layers", str(baseline1.autoencoder.depth), "3"],
        ["Baseline #1 AE: input size", "51", "51"],
        ["Baseline #1 AE: bottleneck size", str(baseline1.autoencoder.bottleneck_size), "5"],
        ["Baseline #2: total input size", str(NUM_KITSUNE_FEATURES), "100"],
        ["Baseline #2: ensemble size", str(len(kitsune.ensemble)), "16"],
        ["Baseline #2: # epochs", str(kitsune.epochs), "1"],
    ]
    text = render_table(["Hyper-parameter", "This run", "Paper (Table 6)"], rows)
    write_result("table6_hyperparameters.txt", text)

    # Architectural constants must match the paper exactly.
    assert description["rnn.layers"] == 1
    assert description["rnn.input_size"] == 32
    assert description["rnn.hidden_size"] == 32
    assert description["autoencoder.layers"] == 7
    assert description["autoencoder.bottleneck"] == 40
    assert description["detector.stack_length"] == 3
    assert CONTEXT_PROFILE_SIZE * config.detector.stack_length == 345
    assert baseline1.autoencoder.depth == 3
    assert baseline1.autoencoder.bottleneck_size == 5
    assert NUM_KITSUNE_FEATURES == 100
    assert kitsune.epochs == 1
    # Ensemble size depends on the fitted feature mapping (Table 6 reports 16
    # autoencoders over 100 features); it must respect the 10-feature cluster
    # cap, which bounds it between 10 and 100.
    assert 10 <= len(kitsune.ensemble) <= 100
    assert kitsune.mapping.max_cluster_size <= 10
