"""Figure 12: per-strategy Top-5/3/1 localisation accuracy for Geneva [4]."""

from benchmarks.figure_helpers import check_localization_figure
from repro.attacks.base import AttackSource
from repro.evaluation.runner import CLAP_NAME


def test_figure12_localization_geneva(experiment, benchmark):
    clap = experiment.results[CLAP_NAME]
    benchmark(lambda: [r.localization.top5 for r in clap.by_source(AttackSource.GENEVA)])
    check_localization_figure(
        experiment.results, AttackSource.GENEVA, "figure12_localization_geneva.txt"
    )


def test_overall_localization_summary(experiment, benchmark):
    """Headline localisation numbers (paper: Top-5 94.6%, Top-3 91.0%, Top-1 76.8%)."""
    from benchmarks.conftest import write_result
    from repro.evaluation.reporting import overall_summary

    summary = benchmark(lambda: overall_summary(experiment.results))
    lines = [f"{key}: {value:.3f}" for key, value in summary.items()]
    write_result("overall_summary.txt", "\n".join(lines))
    assert summary["CLAP mean Top-5"] >= summary["CLAP mean Top-3"] >= summary["CLAP mean Top-1"]
    assert summary["CLAP mean Top-5"] > 0.6
