"""Table 7: the context-profile feature list.

Regenerates the full 115-feature schema (raw header features, amplification
features, gate weights) and verifies the structural counts of Table 7 plus the
fact that extracted profiles really follow the schema.
"""

from benchmarks.conftest import write_result
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import CLAP_NAME
from repro.features.schema import (
    CONTEXT_PROFILE_SIZE,
    NUM_AMPLIFICATION_FEATURES,
    NUM_GATE_FEATURES,
    NUM_RAW_FEATURES,
    all_feature_specs,
)


def test_table7_feature_set(experiment, benchmark):
    specs = benchmark(all_feature_specs)

    rows = [
        [str(spec.index), spec.feature_type.value, spec.group.value, spec.name]
        for spec in specs
    ]
    text = render_table(["Index", "Type", "Group", "Semantic"], rows)
    write_result("table7_feature_set.txt", text)

    assert len(specs) == CONTEXT_PROFILE_SIZE == 115
    assert NUM_RAW_FEATURES == 32  # features 1-32: IP/TCP header fields
    assert NUM_AMPLIFICATION_FEATURES == 19  # features 33-51
    assert NUM_GATE_FEATURES == 64  # features 52-115: update + reset gates

    # The trained pipeline's profiles follow the same layout.
    clap = experiment.runner.detectors[CLAP_NAME]
    connection = experiment.runner.test_connections[0]
    profiles = clap.builder.connection_profiles(connection)
    assert profiles.profiles.shape[1] == CONTEXT_PROFILE_SIZE
    assert profiles.update_gates.shape[1] == 32
    assert profiles.reset_gates.shape[1] == 32
