"""Shared state for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  They all share
one expensive artefact: the three trained detectors (CLAP, Baseline #1,
Baseline #2) and their evaluation against all 73 strategies.  That work is
done once per pytest session by the :func:`experiment` fixture and cached.

Scale is controlled by the ``CLAP_BENCH_SCALE`` environment variable
(default 1.0): the benign corpus size and the number of scored test
connections grow linearly with it.  ``CLAP_BENCH_SCALE=3`` gets closer to the
paper's statistics at the cost of a proportionally longer run.

Rendered tables are written to ``benchmarks/results/`` so EXPERIMENTS.md can
reference them, and echoed to stdout (run pytest with ``-s`` to see them
live).
"""

from __future__ import annotations

import json
import os
import subprocess
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.attacks.base import all_strategies
from repro.core.config import ClapConfig
from repro.evaluation.runner import (
    BASELINE1_NAME,
    BASELINE2_NAME,
    CLAP_NAME,
    ExperimentResults,
    ExperimentRunner,
)
from repro.traffic.dataset import BenignDataset

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("CLAP_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("CLAP_BENCH_SEED", "2020"))


def bench_config() -> ClapConfig:
    """The configuration used by every benchmark (recorded in EXPERIMENTS.md)."""
    config = ClapConfig()
    config.rnn.epochs = 30  # paper value (Table 6)
    config.rnn.learning_rate = 0.01
    config.autoencoder.epochs = 100  # paper uses 1,000; see EXPERIMENTS.md
    return config


@dataclass
class Experiment:
    """Everything the table/figure benchmarks need."""

    dataset: BenignDataset
    runner: ExperimentRunner
    results: ExperimentResults
    config: ClapConfig


_EXPERIMENT_CACHE: Experiment | None = None


def _build_experiment() -> Experiment:
    connection_count = max(int(140 * BENCH_SCALE), 60)
    max_test_connections = max(int(20 * BENCH_SCALE), 10)
    dataset = BenignDataset.synthesize(
        connection_count=connection_count, seed=BENCH_SEED, train_fraction=0.83
    )
    config = bench_config()
    runner = ExperimentRunner(
        dataset, config=config, seed=BENCH_SEED, max_test_connections=max_test_connections
    )
    runner.train((CLAP_NAME, BASELINE1_NAME, BASELINE2_NAME))
    results = runner.evaluate(all_strategies(), with_localization=True)
    return Experiment(dataset=dataset, runner=runner, results=results, config=config)


@pytest.fixture(scope="session")
def experiment() -> Experiment:
    """Session-cached trained detectors + full 73-strategy evaluation."""
    global _EXPERIMENT_CACHE
    if _EXPERIMENT_CACHE is None:
        _EXPERIMENT_CACHE = _build_experiment()
    return _EXPERIMENT_CACHE


def write_result(name: str, content: str) -> Path:
    """Persist a rendered table/series under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(content + "\n")
    print(f"\n----- {name} -----\n{content}\n")
    return path


def host_cores() -> int:
    """Cores actually usable by this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def git_sha() -> str:
    """The commit the numbers were measured at (``unknown`` outside git)."""
    try:
        probe = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            cwd=Path(__file__).parent,
            check=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return probe.stdout.strip() or "unknown"


def write_json_result(name: str, payload: dict) -> Path:
    """Persist a machine-readable result with host/commit provenance.

    Every JSON artefact carries the usable core count, the measured commit
    and the bench scale/seed, so downstream comparisons (CI trend lines,
    cross-host tables) never have to guess what produced the numbers.
    """
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / name
    record = {
        "host_cores": host_cores(),
        "git_sha": git_sha(),
        "bench_scale": BENCH_SCALE,
        "bench_seed": BENCH_SEED,
        **payload,
    }
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"\n----- {name} -----\n{json.dumps(record, sort_keys=True)[:400]}\n")
    return path
