"""Figure 6: reconstruction-error trend across an adversarial connection.

The figure shows that the sliding-window reconstruction error spikes around
the injected adversarial packet and falls back to the benign level elsewhere —
the observation motivating the localize-and-estimate adversarial score.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.attacks.base import get_strategy
from repro.attacks.injector import AttackInjector
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import CLAP_NAME

STRATEGY = "GFW: Injected RST Bad TCP-Checksum/MD5-Option"


def test_figure6_reconstruction_error_trend(experiment, benchmark):
    clap = experiment.runner.detectors[CLAP_NAME]
    connection = max(experiment.runner.test_connections, key=len)
    strategy = get_strategy(STRATEGY)
    adversarial = AttackInjector(seed=42).attack_connection(strategy, connection)

    errors = benchmark(lambda: clap.window_errors(adversarial.connection))
    benign_errors = clap.window_errors(connection)

    injected = adversarial.injected_indices[0]
    rows = [
        [
            str(index),
            f"{error:.5f}",
            "<== injected adversarial packet in window" if index <= injected < index + 3 else "",
        ]
        for index, error in enumerate(errors)
    ]
    header = [
        f"strategy: {STRATEGY}",
        f"benign error level: mean={benign_errors.mean():.5f} max={benign_errors.max():.5f}",
        f"injected packet index: {injected}",
        "",
    ]
    text = "\n".join(header) + render_table(["Window", "Reconstruction error", ""], rows)
    write_result("figure6_error_trend.txt", text)

    # The spike: windows covering the injected packet carry the maximum error,
    # and that maximum clearly exceeds the benign error level of the same
    # connection (the shape of Figure 6).
    spike_window = int(np.argmax(errors))
    assert spike_window <= injected < spike_window + 3 or abs(spike_window - injected) <= 2
    assert errors.max() > benign_errors.max()
    assert errors.max() > 1.5 * np.median(errors)
