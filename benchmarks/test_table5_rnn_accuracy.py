"""Table 5: per-label accuracy of the Stage-(a) RNN state classifier.

The paper reports an overall test accuracy of 0.995 with near-perfect
per-label accuracy on the in-window classes (the out-of-window classes are
rare and noisier).  The benchmark regenerates the per-label breakdown on the
benign test split and asserts high overall accuracy on the populated labels.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.reporting import render_table
from repro.evaluation.runner import CLAP_NAME


def test_table5_rnn_per_label_accuracy(experiment, benchmark):
    clap = experiment.runner.detectors[CLAP_NAME]
    rnn_stage = clap.rnn_stage
    test_connections = experiment.runner.test_connections

    overall = benchmark(lambda: rnn_stage.evaluate(test_connections))

    breakdown = rnn_stage.per_label_accuracy(test_connections)
    rows = [
        [name, f"{accuracy:.4f}" if np.isfinite(accuracy) else "n/a", str(count)]
        for name, (accuracy, count) in breakdown.items()
        if count > 0
    ]
    rows.append(["OVERALL (test split)", f"{overall:.4f}", str(sum(int(r[2]) for r in rows))])
    text = render_table(["Label", "Accuracy", "# Packets"], rows)
    write_result("table5_rnn_accuracy.txt", text)

    # Overall accuracy: the paper reports 0.995 at full scale; the reduced
    # corpus here must still be clearly above the majority-class baseline.
    assert overall > 0.85

    # The dominant in-window labels must be populated and accurately predicted.
    populated = {name: (acc, count) for name, (acc, count) in breakdown.items() if count > 0}
    assert "ESTABLISHED/IN" in populated
    assert populated["ESTABLISHED/IN"][0] > 0.85
    assert len(populated) >= 6  # several distinct connection states observed
