"""Ingest stage breakdown: object vs columnar pcap → features hot path.

The columnar ingest PR's claim is that the testing-phase bottleneck moved
from the model to *parsing and feature extraction*, and that turning both
into NumPy array programs removes the serial-Python floor under the serving
path.  This benchmark times each stage of ``pcap → (n, 32) raw-feature
matrix`` on both implementations of the same corpus:

* **parse** — capture file to packets: ``read_pcap`` (one ``Packet`` per
  record) vs ``read_packet_columns`` (bulk block scan + vectorized parse);
* **features** — assembled connections to per-connection feature matrices:
  the per-packet reference loop vs ``extract_packet_trains`` over shared
  :class:`~repro.netstack.columns.PacketColumns`;
* **full pipeline** — file to feature matrices end to end, including flow
  assembly.

The equivalence suite (``tests/features/test_columnar_equivalence.py``)
guarantees both paths produce byte-identical matrices, so this file only
measures.  ``tools/ingest_smoke.py`` runs the same breakdown in quick mode
as a CI regression gate.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable

import numpy as np

from benchmarks.conftest import BENCH_SCALE, write_result
from repro.features.fields import RawFeatureExtractor
from repro.netstack.flow import assemble_connections, packet_stream
from repro.netstack.pcap import read_packet_columns, read_pcap, write_pcap
from repro.traffic.generator import TrafficGenerator


def _best_of(function: Callable[[], object], repeats: int = 3) -> float:
    function()  # warm-up
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        timings.append(time.perf_counter() - start)
    return min(timings)


def measure_ingest_breakdown(path, packet_count: int, repeats: int = 3) -> list[tuple[str, float, float]]:
    """Time each ingest stage on both paths; returns (stage, obj, col) pkt/s."""
    extractor = RawFeatureExtractor()
    rows: list[tuple[str, float, float]] = []

    parse_object = _best_of(lambda: read_pcap(path), repeats)
    parse_columnar = _best_of(lambda: read_packet_columns(path), repeats)
    rows.append(("parse only", packet_count / parse_object, packet_count / parse_columnar))

    object_connections = assemble_connections(read_pcap(path))
    view_connections = assemble_connections(read_packet_columns(path).views())
    object_trains = [connection.packets for connection in object_connections]
    view_trains = [connection.packets for connection in view_connections]
    features_object = _best_of(
        lambda: [extractor.extract_packets_reference(train) for train in object_trains],
        repeats,
    )
    features_columnar = _best_of(lambda: extractor.extract_packet_trains(view_trains), repeats)
    rows.append(
        ("features only", packet_count / features_object, packet_count / features_columnar)
    )

    def full_object():
        connections = assemble_connections(read_pcap(path))
        return [
            extractor.extract_packets_reference(connection.packets)
            for connection in connections
        ]

    def full_columnar():
        connections = assemble_connections(read_packet_columns(path).views())
        return extractor.extract_packet_trains(
            [connection.packets for connection in connections]
        )

    full_obj = _best_of(full_object, repeats)
    full_col = _best_of(full_columnar, repeats)
    rows.append(("full pipeline", packet_count / full_obj, packet_count / full_col))
    return rows


def render_breakdown(rows: list[tuple[str, float, float]], packet_count: int) -> str:
    lines = [
        f"{'Stage':<16} | {'Object pkt/s':>14} | {'Columnar pkt/s':>14} | {'Speedup':>8}",
        f"{'-' * 16}-+-{'-' * 14}-+-{'-' * 14}-+-{'-' * 8}",
    ]
    for stage, object_pps, columnar_pps in rows:
        lines.append(
            f"{stage:<16} | {object_pps:>14,.1f} | {columnar_pps:>14,.1f} |"
            f" {columnar_pps / object_pps:>7.2f}x"
        )
    lines.append("")
    lines.append(
        f"corpus: {packet_count} packets; best of 3 runs per stage; 'full pipeline'"
        " = parse + flow assembly + 32-feature extraction (what the serving path"
        " does before the model)."
    )
    return "\n".join(lines)


def test_ingest_breakdown(tmp_path):
    connections = TrafficGenerator(seed=424242).generate_connections(
        max(int(400 * BENCH_SCALE), 120)
    )
    packets = packet_stream(connections)
    path = tmp_path / "ingest.pcap"
    write_pcap(path, packets)

    rows = measure_ingest_breakdown(path, len(packets))
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    text = render_breakdown(rows, len(packets)) + f"\nhost had {cores} usable core(s)."
    write_result("ingest_breakdown.txt", text)

    # Both paths must see the same packets, and the matrices stay identical
    # (spot check; the exhaustive guarantee lives in the equivalence suite).
    extractor = RawFeatureExtractor()
    object_connections = assemble_connections(read_pcap(path))
    view_connections = assemble_connections(read_packet_columns(path).views())
    assert [len(c) for c in object_connections] == [len(c) for c in view_connections]
    assert np.array_equal(
        extractor.extract_packets_reference(object_connections[0].packets),
        extractor.extract_packets(view_connections[0].packets),
    )

    by_stage = {stage: (obj, col) for stage, obj, col in rows}
    # The vectorized feature path is the headline: an order of magnitude on
    # any host; asserted conservatively to stay robust to CI noise.
    assert by_stage["features only"][1] > 4.0 * by_stage["features only"][0]
    # End to end the columnar path must win outright...
    assert by_stage["full pipeline"][1] > by_stage["full pipeline"][0]
    # ...and the bulk scanner must at least hold its own on parse.
    assert by_stage["parse only"][1] > 0.6 * by_stage["parse only"][0]
