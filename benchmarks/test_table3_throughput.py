"""Table 3: model processing throughput (packets/s, connections/s).

Paper values on a Xeon E3-1225 single core: CLAP 2,162 packets/s vs Kitsune
1,445 packets/s (+49.7%).  Absolute numbers depend on the host; the shape to
preserve is that CLAP's single-autoencoder testing phase processes packets
faster than the ensemble-of-autoencoders baseline.

Beyond the paper, the table now also tracks the full packets-in/alerts-out
serving path: ``mode="streaming"`` replays the test connections' packets in
timestamp order through the sharded :class:`ParallelStreamingDetector` at
worker counts 1 and 4, covering flow assembly, micro-batching and event
dispatch — not just scoring.  The streaming rows use the columnar ingest
path (what a ``PcapSource`` feeds the runtime since the columnar-ingest PR);
a ``workers=1, object`` row keeps the per-``Packet`` reference measurable.

Worker rows come in both substrates: ``thread`` workers share one GIL (only
the NumPy-released portions parallelise), while ``process`` workers each own
a core — the model is loaded read-only via mmap and capture blocks ship as
packed column slices.  Since the setup/steady split, each row's fixed costs
(detector construction, worker spawn, the process pool's artifact save and
per-worker model map) are measured into a separate ``Setup (s)`` column and
the ``Packets/Second`` column is the steady-state ingest rate; the old
all-inclusive figure survives as ``Total Pkt/s``.  Backend rows serve the
same model through the tolerance-gated fast paths (``gru-f32``,
``quantized-gru``) via ``measure_throughput(..., backend=...)``.
"""

from benchmarks.conftest import host_cores, write_json_result, write_result
from repro.evaluation.reporting import render_table3
from repro.evaluation.runner import BASELINE2_NAME, CLAP_NAME


def _available_cores() -> int:
    return host_cores()


def test_table3_throughput(experiment, benchmark):
    runner = experiment.runner
    sample = runner.test_connections

    clap_detector = runner.detectors[CLAP_NAME]
    benchmark(lambda: clap_detector.score_connections(sample[:10]))

    # The serving-path rows need enough packets to amortise per-run fixed
    # costs (worker spawn/join, queue warm-up, the process pool's model
    # save/map), so they replay the whole corpus rather than the small
    # scored sample — and keep the best of three runs, the noise-robust
    # estimator for wall-clock timings.
    corpus = experiment.dataset.train + experiment.dataset.test

    def best_streaming(
        workers: int, ingest: str, worker_mode: str = "thread", backend: str = None
    ):
        runs = [
            runner.measure_throughput(
                CLAP_NAME,
                corpus,
                mode="streaming",
                workers=workers,
                ingest=ingest,
                worker_mode=worker_mode,
                backend=backend,
            )
            for _ in range(3)
        ]
        return min(runs, key=lambda result: result.seconds)

    def best_batched(name: str, backend: str = None):
        # The batched rows score a small sample in tens of milliseconds, so
        # a single scheduler hiccup can swing them by 20%+; use the same
        # best-of-3 estimator as the streaming rows.
        runs = [
            runner.measure_throughput(name, sample, backend=backend) for _ in range(3)
        ]
        return min(runs, key=lambda result: result.seconds)

    throughput = {
        CLAP_NAME: best_batched(CLAP_NAME),
        "CLAP (gru-f32)": best_batched(CLAP_NAME, backend="gru-f32"),
        "CLAP (quantized)": best_batched(CLAP_NAME, backend="quantized-gru"),
        BASELINE2_NAME: best_batched(BASELINE2_NAME),
        "CLAP (streaming, 1 worker)": best_streaming(1, "columnar"),
        "CLAP (streaming, 1 worker, gru-f32)": best_streaming(
            1, "columnar", backend="gru-f32"
        ),
        "CLAP (streaming, 4 workers)": best_streaming(4, "columnar"),
        "CLAP (streaming, 1 worker, object)": best_streaming(1, "object"),
        "CLAP (streaming, 1 process)": best_streaming(1, "columnar", "process"),
        "CLAP (streaming, 4 processes)": best_streaming(4, "columnar", "process"),
    }
    cores = _available_cores()
    text = render_table3(throughput) + (
        f"\n\nstreaming rows: full packets-in/alerts-out path (flow assembly +"
        f" micro-batched scoring + event dispatch), best of 3 replays of the"
        f" whole corpus; host had {cores} usable core(s).  'columnar' streams"
        f" ColumnPacketView handles over pre-parsed PacketColumns (the"
        f" PcapSource serving path; scores identical to the object rows),"
        f" 'object' streams full Packet objects (the pre-columnar reference)."
        f"  Process rows spawn one OS process per shard (GIL-free scaling):"
        f" each worker maps the model read-only (mmap) and receives packed"
        f" column-block slices.  'Setup (s)' isolates each row's fixed costs"
        f" (detector construction, worker spawn, the process pool's artifact"
        f" save and per-worker model map) from the steady-state"
        f" 'Packets/Second'; 'Total Pkt/s' is the old all-inclusive figure."
        f"  Backend rows serve the fused float32 and int8-quantized fast"
        f" paths, verdict-identical within their documented tolerance gates"
        f" (see tests/core/test_backend_equivalence.py)."
    )
    write_result("table3_throughput.txt", text)
    # Machine-readable companion: one row per rendered table row, stamped
    # with the measuring host's core count and commit so trend tooling can
    # compare like with like.
    write_json_result(
        "BENCH_table3.json",
        {
            "table": "table3_throughput",
            "rows": [
                {
                    "label": name,
                    "mode": result.mode,
                    "backend": result.backend,
                    "ingest": result.ingest,
                    "workers": result.workers,
                    "worker_mode": result.worker_mode,
                    "packets": result.packets,
                    "connections": result.connections,
                    "seconds": result.seconds,
                    "setup_seconds": result.setup_seconds,
                    "packets_per_second": result.packets_per_second,
                    "connections_per_second": result.connections_per_second,
                }
                for name, result in throughput.items()
            ],
        },
    )

    clap = throughput[CLAP_NAME]
    kitsune = throughput[BASELINE2_NAME]
    assert clap.packets > 0 and kitsune.packets > 0
    # CLAP processes packets faster than the ensemble baseline (Table 3 shape).
    assert clap.packets_per_second > kitsune.packets_per_second
    assert clap.connections_per_second > kitsune.connections_per_second
    # Sanity: the Python prototype should comfortably exceed 100 packets/s.
    assert clap.packets_per_second > 100

    clap_f32 = throughput["CLAP (gru-f32)"]
    clap_quantized = throughput["CLAP (quantized)"]
    # The fast serving backends must not regress the end-to-end batched path.
    # The model-only stage is 1.5-2x faster (see rnn_step_breakdown), but it
    # is only part of the score path, so the whole-path gain is diluted; the
    # tripwire guards against regression rather than asserting the dilution.
    assert clap_f32.connections == clap_quantized.connections == clap.connections
    assert clap_f32.packets_per_second > 0.9 * clap.packets_per_second
    assert clap_quantized.packets_per_second > 0.9 * clap.packets_per_second

    streaming_1 = throughput["CLAP (streaming, 1 worker)"]
    streaming_4 = throughput["CLAP (streaming, 4 workers)"]
    streaming_f32 = throughput["CLAP (streaming, 1 worker, gru-f32)"]
    streaming_object = throughput["CLAP (streaming, 1 worker, object)"]
    process_1 = throughput["CLAP (streaming, 1 process)"]
    process_4 = throughput["CLAP (streaming, 4 processes)"]
    assert streaming_f32.connections == streaming_1.connections
    # In the streaming path the model stage is a minority of the per-packet
    # work (flow assembly + micro-batching dominate), so the f32 model gain
    # dilutes toward 1.0x and single-core jitter can push the ratio below
    # it; guard against a real regression only.
    assert streaming_f32.packets_per_second > 0.75 * streaming_1.packets_per_second
    assert streaming_1.connections == streaming_4.connections > 0
    assert streaming_1.connections == streaming_object.connections
    # Process mode emits the identical connection set (scores are asserted
    # equal to 1e-9 by the serve test suite; the benchmark checks the count).
    assert process_1.connections == process_4.connections == streaming_1.connections
    assert streaming_1.packets_per_second > 100
    # Columnar ingest must beat the object reference on the serving path.
    assert streaming_1.packets_per_second > streaming_object.packets_per_second
    if cores > 1:
        # With real parallel compute available, four shard workers must beat
        # the single-worker packets-in/alerts-out baseline — and the process
        # pool, which does not share a GIL, is the row this PR adds for it.
        assert streaming_4.packets_per_second > streaming_1.packets_per_second
        assert process_4.packets_per_second > streaming_1.packets_per_second
    else:
        # Single-core host: neither threads nor processes can add compute, so
        # only guard that coordination overhead stays bounded.  The process
        # pool's fixed costs (artifact save, spawn, model map) now land in
        # the setup column, so these steady-state ratios measure block
        # serialisation + IPC on a time-sliced core; the tripwires keep the
        # pre-split lower bounds, which steady-state rates clear easily.
        assert streaming_4.packets_per_second > 0.6 * streaming_1.packets_per_second
        assert process_1.packets_per_second > 0.10 * streaming_1.packets_per_second
        assert process_4.packets_per_second > 0.05 * streaming_1.packets_per_second
