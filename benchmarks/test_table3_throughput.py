"""Table 3: model processing throughput (packets/s, connections/s).

Paper values on a Xeon E3-1225 single core: CLAP 2,162 packets/s vs Kitsune
1,445 packets/s (+49.7%).  Absolute numbers depend on the host; the shape to
preserve is that CLAP's single-autoencoder testing phase processes packets
faster than the ensemble-of-autoencoders baseline.
"""

from benchmarks.conftest import write_result
from repro.evaluation.reporting import render_table3
from repro.evaluation.runner import BASELINE2_NAME, CLAP_NAME


def test_table3_throughput(experiment, benchmark):
    runner = experiment.runner
    sample = runner.test_connections

    clap_detector = runner.detectors[CLAP_NAME]
    benchmark(lambda: clap_detector.score_connections(sample[:10]))

    throughput = {
        CLAP_NAME: runner.measure_throughput(CLAP_NAME, sample),
        BASELINE2_NAME: runner.measure_throughput(BASELINE2_NAME, sample),
    }
    text = render_table3(throughput)
    write_result("table3_throughput.txt", text)

    clap = throughput[CLAP_NAME]
    kitsune = throughput[BASELINE2_NAME]
    assert clap.packets > 0 and kitsune.packets > 0
    # CLAP processes packets faster than the ensemble baseline (Table 3 shape).
    assert clap.packets_per_second > kitsune.packets_per_second
    assert clap.connections_per_second > kitsune.connections_per_second
    # Sanity: the Python prototype should comfortably exceed 100 packets/s.
    assert clap.packets_per_second > 100
