"""Figure 11: per-strategy Top-5/3/1 localisation accuracy for lib-erate [10]."""

from benchmarks.figure_helpers import check_localization_figure
from repro.attacks.base import AttackSource
from repro.evaluation.runner import CLAP_NAME


def test_figure11_localization_liberate(experiment, benchmark):
    clap = experiment.results[CLAP_NAME]
    benchmark(lambda: [r.localization.top5 for r in clap.by_source(AttackSource.LIBERATE)])
    check_localization_figure(
        experiment.results, AttackSource.LIBERATE, "figure11_localization_liberate.txt"
    )
