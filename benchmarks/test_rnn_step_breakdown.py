"""Per-stage model-time breakdown: where the score path spends its time.

The model-side cost of scoring a flush batch decomposes into four stages:

1. **input projection** — the one dense ``(sum(len), input) @ (input, 3h)``
   product plus bias, shared by every step of every lane;
2. **recurrent loop** — the per-step ``h_prev @ U``, gate activations and
   hidden update over the alive-lane suffix (the serial part);
3. **profile stacking** — sliding-window concatenation of context profiles
   (:func:`repro.features.profile.stack_profiles`);
4. **stage-(d) reductions** — the localize-and-estimate score over window
   errors (:func:`repro.core.detector.adversarial_score_batch`).

This benchmark times each stage at several batch-size/length mixes and
compares the model-only stage (projection + loop, i.e. the batched gate
extraction) across the sequence backends against the **pre-PR reference
loop** — the allocating per-step implementation this PR replaced, embedded
below verbatim so the comparison survives future edits to the live code.

Random weights are used deliberately: gate-extraction time is independent of
what the weights converged to, and skipping the training fixture keeps the
benchmark self-contained.  The fused float64 path must reproduce the
reference *bit-for-bit* (it is the correctness oracle); the float32 and int8
serving paths are where the speed lives, and the committed results file
records all of it.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from benchmarks.conftest import write_result
from repro.core.config import ClapConfig
from repro.core.detector import adversarial_score_batch
from repro.features.profile import stack_profiles
from repro.nn.activations import sigmoid
from repro.nn.backend import GruBackend, QuantizedGruBackend, convert_backend

INPUT_SIZE = 32
HIDDEN_SIZE = 32
NUM_CLASSES = 22
SEED = 2020
REPEATS = 5

# (name, connection count, min length, max length) — flush-sized micro-batch,
# a large scoring batch, and a mix with a long tail of packet-heavy flows.
MIXES = (
    ("flush-64x30", 64, 20, 40),
    ("batch-256x30", 256, 20, 40),
    ("tail-64x10-200", 64, 10, 200),
)


class ReferenceGru:
    """The pre-PR gate extraction, frozen for comparison.

    ``gates_packed`` and the chunked batch driver below are the exact
    allocating implementations this PR's fused loop replaced (recovered from
    the git history), parameterised on the same weights as the live backend.
    """

    def __init__(self, backend: GruBackend):
        self.weight_input = backend.gru.weight_input.copy()
        self.weight_hidden = backend.gru.weight_hidden.copy()
        self.bias = backend.gru.bias.copy()
        self.input_size = backend.input_size
        self.hidden_size = backend.hidden_size

    def project(self, inputs: np.ndarray) -> np.ndarray:
        batch, steps, _ = inputs.shape
        return (
            inputs.reshape(batch * steps, self.input_size) @ self.weight_input
            + self.bias
        ).reshape(batch, steps, 3 * self.hidden_size)

    def gates_packed(
        self, inputs: np.ndarray, lengths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        batch, steps, _ = inputs.shape
        h = self.hidden_size
        hidden = np.zeros((batch, h), dtype=np.float64)
        update_gates = np.zeros((batch, steps, h), dtype=np.float64)
        reset_gates = np.zeros_like(update_gates)
        weight_hidden = self.weight_hidden
        projected = self.project(inputs)
        alive_from = np.searchsorted(lengths, np.arange(steps), side="right")
        for t in range(steps):
            start = int(alive_from[t])
            projected_input = projected[start:, t, :]
            h_prev = hidden[start:]
            projected_hidden = h_prev @ weight_hidden
            gates = sigmoid(
                projected_input[:, : 2 * h] + projected_hidden[:, : 2 * h]
            )
            update_gate = gates[:, :h]
            reset_gate = gates[:, h:]
            candidate = np.tanh(
                projected_input[:, 2 * h :] + reset_gate * projected_hidden[:, 2 * h :]
            )
            hidden[start:] = (1.0 - update_gate) * h_prev + update_gate * candidate
            update_gates[start:, t, :] = update_gate
            reset_gates[start:, t, :] = reset_gate
        return update_gates, reset_gates

    def _chunks(
        self, sequences: Sequence[np.ndarray], chunk_size: int = 64
    ) -> list[tuple[list[int], np.ndarray, np.ndarray]]:
        lengths = [int(sequence.shape[0]) for sequence in sequences]
        order = sorted(range(len(sequences)), key=lambda index: lengths[index])
        chunks = []
        for start in range(0, len(order), chunk_size):
            chosen = order[start : start + chunk_size]
            max_time = max(lengths[index] for index in chosen)
            inputs = np.zeros((len(chosen), max_time, self.input_size))
            for row, index in enumerate(chosen):
                inputs[row, : lengths[index]] = sequences[index]
            chunk_lengths = np.array([lengths[index] for index in chosen])
            chunks.append((chosen, inputs, chunk_lengths))
        return chunks

    def projection_only(self, sequences: Sequence[np.ndarray]) -> None:
        """Stage 1 in isolation: pad + one dense input projection per chunk."""
        for _, inputs, _ in self._chunks(sequences):
            self.project(inputs)

    def gate_activations_batch(
        self, sequences: Sequence[np.ndarray]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        results: list[tuple[np.ndarray, np.ndarray] | None] = [None] * len(sequences)
        for chosen, inputs, chunk_lengths in self._chunks(sequences):
            update_gates, reset_gates = self.gates_packed(inputs, chunk_lengths)
            for row, index in enumerate(chosen):
                length = int(chunk_lengths[row])
                results[index] = (
                    update_gates[row, :length].copy(),
                    reset_gates[row, :length].copy(),
                )
        return results  # type: ignore[return-value]


def _make_sequences(count: int, low: int, high: int, rng) -> list[np.ndarray]:
    lengths = rng.integers(low, high + 1, size=count)
    return [rng.normal(size=(int(length), INPUT_SIZE)) for length in lengths]


def _best(fn, repeats: int = REPEATS) -> float:
    fn()  # warm-up (also primes the packed-plan cache for the fused paths)
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def test_rnn_step_breakdown():
    rng = np.random.default_rng(SEED)
    model = GruBackend(INPUT_SIZE, HIDDEN_SIZE, NUM_CLASSES, seed=SEED)
    reference = ReferenceGru(model)
    f32 = convert_backend(model, "gru-f32")
    quantized = QuantizedGruBackend.quantize(model)
    stack_length = ClapConfig().detector.stack_length

    lines = [
        "Per-stage model-time breakdown (GRU input=32, hidden=32, classes=22; "
        f"best of {REPEATS})",
        "reference = the pre-PR allocating per-step loop; gru = this PR's fused",
        "float64 loop (bit-identical to the reference); gru-f32 / quantized-gru",
        "= the tolerance-gated serving fast paths.  'cold plan' includes building",
        "the sort/chunk/scatter plan; 'warm plan' reuses the cached one, the",
        "steady state of the streaming flush loop.",
        "",
    ]
    f32_speedups = []
    quantized_speedups = []
    f64_speedups = []

    for name, count, low, high in MIXES:
        sequences = _make_sequences(count, low, high, rng)
        lengths = [sequence.shape[0] for sequence in sequences]

        # The fused float64 path must replay the reference bit-for-bit.
        expected = reference.gate_activations_batch(sequences)
        actual = model.gate_activations_batch(sequences)
        for (expected_update, expected_reset), (update, reset) in zip(expected, actual):
            assert np.array_equal(expected_update, update)
            assert np.array_equal(expected_reset, reset)

        projection_seconds = _best(lambda: reference.projection_only(sequences))
        reference_seconds = _best(lambda: reference.gate_activations_batch(sequences))
        loop_seconds = max(reference_seconds - projection_seconds, 0.0)

        # Cold plan: a fresh backend whose plan cache has never seen these
        # lengths (one un-timed quantize/convert clone is cheap).
        cold_model = GruBackend.from_state_dict(model.state_dict())
        cold_start = time.perf_counter()
        cold_model.gate_activations_batch(sequences)
        cold_seconds = time.perf_counter() - cold_start
        fused_seconds = _best(lambda: model.gate_activations_batch(sequences))
        f32_seconds = _best(lambda: f32.gate_activations_batch(sequences))
        quantized_seconds = _best(lambda: quantized.gate_activations_batch(sequences))
        assert model.plan_cache_info()["hits"] > 0  # warm calls reused the plan

        # Stages 3 and 4, shaped like this mix's connections: one context
        # profile per packet, one window error per stacked profile.
        profiles = [rng.normal(size=(length, 2 * HIDDEN_SIZE)) for length in lengths]
        window_counts = [max(length - stack_length + 1, 1) for length in lengths]
        errors = rng.random(sum(window_counts))
        offsets = np.concatenate([[0], np.cumsum(window_counts)])
        stacking_seconds = _best(
            lambda: [stack_profiles(matrix, stack_length) for matrix in profiles]
        )
        reduction_seconds = _best(lambda: adversarial_score_batch(errors, offsets))

        f64_speedups.append(reference_seconds / fused_seconds)
        f32_speedups.append(reference_seconds / f32_seconds)
        quantized_speedups.append(reference_seconds / quantized_seconds)

        lines.append(
            f"mix {name}: {count} connections, lengths {low}-{high} "
            f"({sum(lengths)} packets)"
        )
        lines.append(f"  input projection            {projection_seconds * 1e3:8.2f} ms")
        lines.append(f"  recurrent loop (reference)  {loop_seconds * 1e3:8.2f} ms")
        lines.append(f"  profile stacking            {stacking_seconds * 1e3:8.2f} ms")
        lines.append(f"  stage-(d) reductions        {reduction_seconds * 1e3:8.2f} ms")
        lines.append("  model-only stage (projection + loop), by backend:")
        for label, seconds in (
            ("reference (pre-PR loop)", reference_seconds),
            ("gru (fused f64, cold plan)", cold_seconds),
            ("gru (fused f64, warm plan)", fused_seconds),
            ("gru-f32", f32_seconds),
            ("quantized-gru", quantized_seconds),
        ):
            lines.append(
                f"    {label:<28}{seconds * 1e3:8.2f} ms  "
                f"{reference_seconds / seconds:5.2f}x"
            )
        lines.append("")

    lines.append(
        "The fused float64 loop buys bit-identity, not speed: replaying the"
    )
    lines.append(
        "reference arithmetic exactly into strided in-place views costs it"
    )
    lines.append(
        "10-25% over the reference on this host.  The tolerance-gated serving"
    )
    lines.append(
        "paths (gru-f32, quantized-gru) carry the >= 1.5x acceptance."
    )
    write_result("rnn_step_breakdown.txt", "\n".join(lines))

    # Acceptance: the fast serving paths clear 1.5x on the model-only stage
    # (measured 1.5-2.2x across mixes on an otherwise idle core).  The
    # per-mix floor is a looser regression tripwire because this host is a
    # single shared core and individual mixes jitter by ~20%.
    assert max(f32_speedups) >= 1.5
    assert min(f32_speedups) >= 1.15
    assert max(quantized_speedups) >= 1.5
    assert min(quantized_speedups) >= 1.15
    # The bit-identical f64 loop runs 10-25% behind the reference (exact
    # in-place arithmetic over strided views); tripwire a real regression.
    assert min(f64_speedups) >= 0.6
