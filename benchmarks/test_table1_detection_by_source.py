"""Table 1: mean detection AUC-ROC / EER per source paper, per detector.

Paper values (Table 1): CLAP 0.953/0.072 [23], 0.952/0.082 [10], 0.988/0.024
[4]; Baseline #1 trails by 6-15% AUC; Baseline #2 sits at ~0.5 AUC (random).
The benchmark regenerates the same rows and asserts the ordering.
"""

import numpy as np

from benchmarks.conftest import write_result
from repro.attacks.base import AttackSource
from repro.evaluation.reporting import render_table1
from repro.evaluation.runner import BASELINE1_NAME, BASELINE2_NAME, CLAP_NAME


def test_table1_detection_by_source(experiment, benchmark):
    results = experiment.results
    clap_detector = experiment.runner.detectors[CLAP_NAME]
    sample = experiment.runner.test_connections[:5]
    benchmark(lambda: clap_detector.score_connections(sample))

    text = render_table1(results)
    write_result("table1_detection_by_source.txt", text)

    clap = results[CLAP_NAME]
    baseline1 = results[BASELINE1_NAME]
    baseline2 = results[BASELINE2_NAME]

    for source in AttackSource:
        clap_auc = clap.mean_auc_by_source(source)
        baseline1_auc = baseline1.mean_auc_by_source(source)
        baseline2_auc = baseline2.mean_auc_by_source(source)
        # Shape of Table 1: CLAP at least on par with Baseline #1 per source
        # (the synthetic corpus narrows the paper's gap; see EXPERIMENTS.md)
        # and far above the near-random Baseline #2.
        assert clap_auc > baseline1_auc - 0.05, source
        assert clap_auc > baseline2_auc + 0.2, source
        assert 0.3 <= baseline2_auc <= 0.7, source
        assert clap.mean_eer_by_source(source) < baseline2.mean_eer_by_source(source)

    # Headline numbers (paper: 0.963 AUC / 0.061 EER overall for CLAP).
    assert clap.mean_auc() > 0.85
    assert clap.mean_eer() < 0.25
    assert clap.mean_auc() >= baseline1.mean_auc() - 0.02
    assert clap.mean_eer() <= baseline1.mean_eer() + 0.02
    assert np.isfinite(clap.mean_auc())
