"""Table 2: CLAP vs Baseline #1 split by violated context (inter vs intra).

Paper values: inter-packet violations — CLAP 0.925 AUC vs Baseline #1 0.672
(+37.6%); intra-packet violations — CLAP 0.980 vs 0.923 (+6.2%).  The key
shape: Baseline #1's gap to CLAP is much larger on inter-packet violations
than on intra-packet violations, because it has no temporal context.
"""

from benchmarks.conftest import write_result
from repro.attacks.base import ContextCategory
from repro.evaluation.reporting import render_table2
from repro.evaluation.runner import BASELINE1_NAME, CLAP_NAME, aggregate_by_category


def test_table2_context_breakdown(experiment, benchmark):
    results = experiment.results
    clap = results[CLAP_NAME]
    baseline1 = results[BASELINE1_NAME]

    benchmark(lambda: aggregate_by_category(clap))

    text = render_table2(results)
    write_result("table2_context_breakdown.txt", text)

    clap_inter = clap.mean_auc_by_category(ContextCategory.INTER_PACKET)
    clap_intra = clap.mean_auc_by_category(ContextCategory.INTRA_PACKET)
    baseline_inter = baseline1.mean_auc_by_category(ContextCategory.INTER_PACKET)
    baseline_intra = baseline1.mean_auc_by_category(ContextCategory.INTRA_PACKET)

    # CLAP detects both violation types well.
    assert clap_inter > 0.8
    assert clap_intra > 0.8
    # Baseline #1 is weaker on inter-packet violations (the paper's 37.6%
    # improvement; smaller on the synthetic corpus, see EXPERIMENTS.md) ...
    assert clap_inter > baseline_inter
    # ... and the inter-packet gap exceeds the intra-packet gap (the paper's
    # 37.6% vs 6.2% improvement pattern).
    assert (clap_inter - baseline_inter) > (clap_intra - baseline_intra)
