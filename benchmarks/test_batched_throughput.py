"""Batched engine throughput: batched vs per-connection ``score_connections``.

The tentpole claim of the batched inference engine is that scoring many
connections through one padded GRU batch, one concatenated autoencoder call
and segment-wise Stage-(d) reductions beats the per-connection loop the seed
used.  This benchmark times both entry points of the *same* trained CLAP
detector on the shared experiment fixture and records the ratio.

The sequential contender (``score_connections_sequential``) is the seed
algorithm: per-connection profile building, a single-sequence GRU forward and
a small autoencoder call per connection.  The measured speedup therefore
understates the gain over the actual seed revision, which also lacked this
PR's shared feature-extraction optimisations.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import write_result
from repro.evaluation.runner import CLAP_NAME


def _time_scorer(scorer, connections, repeats: int = 3) -> float:
    """Best-of-``repeats`` wall time after one warm-up call."""
    scorer(connections)
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        scorer(connections)
        timings.append(time.perf_counter() - start)
    return min(timings)


def test_batched_throughput(experiment):
    runner = experiment.runner
    detector = runner.detectors[CLAP_NAME]
    # Repeat the fixture's test split so the timed region is comfortably
    # above timer resolution even at CLAP_BENCH_SCALE=1.
    connections = list(runner.test_connections) * 6
    packets = sum(len(connection) for connection in connections)

    sequential_seconds = _time_scorer(detector.score_connections_sequential, connections)
    batched_seconds = _time_scorer(detector.score_connections, connections)

    sequential_pps = packets / sequential_seconds
    batched_pps = packets / batched_seconds
    speedup = sequential_seconds / batched_seconds

    # The two paths must agree before their timings are comparable.
    difference = np.max(
        np.abs(
            detector.score_connections(connections)
            - detector.score_connections_sequential(connections)
        )
    )

    text = "\n".join(
        [
            "Batched inference engine vs per-connection scoring (CLAP detector)",
            f"connections: {len(connections)}   packets: {packets}",
            f"per-connection: {sequential_seconds:.4f} s  ({sequential_pps:,.0f} packets/s)",
            f"batched:        {batched_seconds:.4f} s  ({batched_pps:,.0f} packets/s)",
            f"speedup:        {speedup:.2f}x",
            f"max |score difference|: {difference:.3e}",
        ]
    )
    write_result("batched_throughput.txt", text)

    assert difference < 1e-9
    # The batched engine must never be slower than the per-connection loop.
    # (Measured ratios: 3.8x over the actual seed revision, 2.8x over the
    # in-tree sequential path on the dev host — the results file records the
    # value for this run; no hard multiple is asserted because shared CI
    # runners make wall-clock ratios flaky.)
    assert batched_pps >= sequential_pps
