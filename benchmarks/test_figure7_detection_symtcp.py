"""Figure 7: per-strategy detection AUC-ROC for the SymTCP [23] strategies."""

from benchmarks.figure_helpers import check_detection_figure
from repro.attacks.base import AttackSource
from repro.evaluation.runner import CLAP_NAME


def test_figure7_detection_symtcp(experiment, benchmark):
    clap = experiment.results[CLAP_NAME]
    benchmark(lambda: [r.auc for r in clap.by_source(AttackSource.SYMTCP)])
    check_detection_figure(
        experiment.results, AttackSource.SYMTCP, "figure7_detection_symtcp.txt"
    )
