"""Figure 10: per-strategy Top-5/3/1 localisation accuracy for SymTCP [23]."""

from benchmarks.figure_helpers import check_localization_figure
from repro.attacks.base import AttackSource
from repro.evaluation.runner import CLAP_NAME


def test_figure10_localization_symtcp(experiment, benchmark):
    clap = experiment.results[CLAP_NAME]
    benchmark(lambda: [r.localization.top5 for r in clap.by_source(AttackSource.SYMTCP)])
    check_localization_figure(
        experiment.results, AttackSource.SYMTCP, "figure10_localization_symtcp.txt"
    )
