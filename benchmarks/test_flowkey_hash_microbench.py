"""FlowKey hash caching micro-benchmark.

The flow table probes a dict with the packet's :class:`FlowKey` once per
packet.  A frozen dataclass's generated ``__hash__`` rebuilds and hashes the
4-tuple on every probe; :class:`FlowKey` now computes the hash once at
construction and returns the cached value.  This benchmark measures the
dict-probe rate against a reference key class with the old recomputing hash
and records the ratio in ``benchmarks/results/flowkey_hash_microbench.txt``.
"""

from __future__ import annotations

import timeit
from dataclasses import dataclass

from benchmarks.conftest import write_result
from repro.netstack.flow import FlowKey

KEYS = 512
PROBES_PER_ROUND = 300


@dataclass(frozen=True)
class UncachedKey:
    """Reference: the dataclass-generated hash FlowKey used to have."""

    ip_a: int
    port_a: int
    ip_b: int
    port_b: int


def _probe_rate(keys, table) -> float:
    seconds = min(
        timeit.repeat(lambda: [table[key] for key in keys],
                      number=PROBES_PER_ROUND, repeat=5)
    )
    return len(keys) * PROBES_PER_ROUND / seconds


def test_flowkey_hash_cache_speeds_up_dict_probes():
    cached_keys = [FlowKey(i, i + 1, i + 2, i + 3) for i in range(KEYS)]
    uncached_keys = [UncachedKey(i, i + 1, i + 2, i + 3) for i in range(KEYS)]
    cached_rate = _probe_rate(cached_keys, {key: 1 for key in cached_keys})
    uncached_rate = _probe_rate(uncached_keys, {key: 1 for key in uncached_keys})
    speedup = cached_rate / uncached_rate
    write_result(
        "flowkey_hash_microbench.txt",
        "FlowKey.__hash__ micro-benchmark (dict probe, one per packet in the flow table)\n"
        f"cached hash (FlowKey):          {cached_rate:,.0f} probes/s\n"
        f"recomputed hash (old dataclass): {uncached_rate:,.0f} probes/s\n"
        f"speedup: {speedup:.2f}x",
    )
    # The cached hash must never be slower; in practice it probes ~2x faster.
    assert speedup > 1.0
