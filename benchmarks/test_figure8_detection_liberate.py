"""Figure 8: per-strategy detection AUC-ROC for the lib-erate [10] strategies
(Min and Max matching-packet variants)."""

from benchmarks.figure_helpers import check_detection_figure
from repro.attacks.base import AttackSource
from repro.evaluation.runner import CLAP_NAME


def test_figure8_detection_liberate(experiment, benchmark):
    clap = experiment.results[CLAP_NAME]
    benchmark(lambda: [r.auc for r in clap.by_source(AttackSource.LIBERATE)])
    check_detection_figure(
        experiment.results, AttackSource.LIBERATE, "figure8_detection_liberate.txt"
    )


def test_figure8_min_and_max_variants_are_both_covered(experiment, benchmark):
    """Both extremes of the matching-packet count are evaluated per strategy."""
    clap = experiment.results[CLAP_NAME]
    names = benchmark(lambda: [r.strategy_name for r in clap.by_source(AttackSource.LIBERATE)])
    minimums = {n for n in names if n.endswith("(Min)")}
    maximums = {n for n in names if n.endswith("(Max)")}
    assert len(minimums) >= 10
    assert len(maximums) >= 10
