"""Shared assertions/rendering for the per-strategy figure benchmarks (7-12)."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro.attacks.base import AttackSource
from repro.evaluation.reporting import (
    render_per_strategy_detection,
    render_per_strategy_localization,
)
from repro.evaluation.runner import (
    BASELINE1_NAME,
    BASELINE2_NAME,
    CLAP_NAME,
    ExperimentResults,
)


def check_detection_figure(results: ExperimentResults, source: AttackSource, output_name: str) -> None:
    """Regenerate a Figure 7/8/9 series and assert its qualitative shape."""
    text = render_per_strategy_detection(results, source)
    write_result(output_name, text)

    clap = results[CLAP_NAME]
    baseline1 = results[BASELINE1_NAME]
    baseline2 = results[BASELINE2_NAME]
    names = [r.strategy_name for r in clap.by_source(source)]
    assert names, f"no strategies evaluated for {source}"

    clap_aucs = np.array([clap.per_strategy[n].auc for n in names])
    baseline1_aucs = np.array([baseline1.per_strategy[n].auc for n in names])
    baseline2_aucs = np.array([baseline2.per_strategy[n].auc for n in names])

    # Per-source shape of Figures 7-9: CLAP's mean AUC is at least on par with
    # Baseline #1 (the synthetic benign corpus makes Baseline #1 stronger than
    # in the paper; see EXPERIMENTS.md), clearly beats the Kitsune-style
    # baseline which hovers around 0.5, and CLAP detects the large majority of
    # strategies well (AUC > 0.75), as in the paper's per-strategy plots.
    assert clap_aucs.mean() > baseline1_aucs.mean() - 0.05
    assert clap_aucs.mean() > baseline2_aucs.mean() + 0.2
    assert 0.3 <= baseline2_aucs.mean() <= 0.7
    assert np.mean(clap_aucs > 0.75) >= 0.6


def check_localization_figure(results: ExperimentResults, source: AttackSource, output_name: str) -> None:
    """Regenerate a Figure 10/11/12 series and assert its qualitative shape."""
    text = render_per_strategy_localization(results, source)
    write_result(output_name, text)

    clap = results[CLAP_NAME]
    entries = [r.localization for r in clap.by_source(source) if r.localization is not None]
    assert entries, f"no localization results for {source}"

    top5 = np.array([e.top5 for e in entries])
    top3 = np.array([e.top3 for e in entries])
    top1 = np.array([e.top1 for e in entries])

    # The Top-5 >= Top-3 >= Top-1 hierarchy of Figures 10-12, with useful
    # absolute localisation accuracy (paper: 94.6% / 91.0% / 76.8% on average).
    assert np.all(top5 >= top3 - 1e-9)
    assert np.all(top3 >= top1 - 1e-9)
    assert top5.mean() > 0.6
    assert top5.mean() >= top1.mean()
