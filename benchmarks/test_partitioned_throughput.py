"""Scale-out serving: the million-flow partitioned replay.

Replays one synthetic workload — a phase of benign generator connections
followed by a :mod:`repro.traffic.flood` SYN flood with a fresh flow per
packet — through four serving topologies: an unpartitioned in-process
detector ("single") and a :class:`~repro.serve.partition.FlowPartitioner`
fanning the same stream out to 1, 2 and 4 local detector instances over
localhost sockets.  The table reports wall-clock packets/s and the peak
flow-table occupancy of every instance.

Equivalence is asserted on the organically completed (``CLOSED``)
connections: their keys, packet counts and scores must agree across every
topology within 1e-9.  Flood flows are excluded *by construction*: under
``DropPolicy(mode="drop")`` every capacity-evicted flood flow is dropped
before scoring, and the ≤ ``max_flows`` flood residue still tracked at
close drains against *per-instance* FIFO capacity state — which residents
survive is partition-dependent by design, exactly as the sharded runtime's
per-worker ``max_flows`` split is, so the drained flood tail carries no
cross-topology guarantee (the benchmark asserts its *size* is bounded by
the global budget instead).

Scale knobs (the committed ``results/partitioned_throughput.txt`` was
produced at the million-flow setting):

* ``CLAP_PARTITION_FLOWS`` — flood flows to replay (default 4,000 so the
  tier-1 suite stays fast; the artefact run uses 1,000,000);
* ``CLAP_PARTITION_REAL`` — benign generator connections (default 48).

Multi-instance topologies are asserted faster than single only when the
host has real parallel cores (Table-3 convention).
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import host_cores, write_result
from repro.core.config import ClapConfig
from repro.core.pipeline import Clap
from repro.serve import (
    CompletionReason,
    DropPolicy,
    FlowPartitioner,
    InstanceConfig,
    ParallelStreamingDetector,
)
from repro.traffic.dataset import BenignDataset
from repro.traffic.flood import syn_flood_blocks
from repro.traffic.generator import TrafficGenerator

FLOOD_FLOWS = int(os.environ.get("CLAP_PARTITION_FLOWS", "4000"))
REAL_CONNECTIONS = int(os.environ.get("CLAP_PARTITION_REAL", "48"))
#: Global flow budget: scales with the flood so capacity eviction always
#: dominates, while the drained residue (which is scored at close) stays
#: small enough to keep the default run fast.
MAX_FLOWS = max(256, min(2048, FLOOD_FLOWS // 16))
FLOOD_BLOCK_ROWS = 32_768
CLOSE_GRACE = 0.5
SCORE_TOLERANCE = 1e-9


@pytest.fixture(scope="module")
def partition_model(tmp_path_factory):
    """A tiny trained pipeline saved to disk for the instances to load."""
    config = ClapConfig.fast()
    config.rnn.epochs = 3
    config.autoencoder.epochs = 10
    dataset = BenignDataset.synthesize(
        connection_count=30, seed=99, train_fraction=0.8
    )
    clap = Clap(config)
    clap.fit(dataset.train)
    model_dir = tmp_path_factory.mktemp("partition-model") / "model"
    clap.save(model_dir)
    return clap, str(model_dir)


def _real_packets():
    """Benign phase: generator connections completing organically (FIN)."""
    connections = TrafficGenerator(seed=311).generate_connections(REAL_CONNECTIONS)
    for index, connection in enumerate(connections):
        for position, packet in enumerate(connection.packets):
            packet.timestamp = index * 5.0 + position * 0.01
    return sorted(
        (packet for connection in connections for packet in connection.packets),
        key=lambda packet: packet.timestamp,
    )


def _drop_policy() -> DropPolicy:
    return DropPolicy(mode="drop")


def _replay(target, real_packets, occupancy_probe=None):
    """Feed benign objects then flood blocks.

    Returns ``(events, seconds, packets, peak)`` where ``peak`` is the
    largest ``occupancy_probe()`` reading sampled once per flood block
    (instances track their own peaks; the in-process reference needs the
    probe).
    """
    events = []
    packets = 0
    peak = 0
    started = time.perf_counter()
    for packet in real_packets:
        target.ingest(packet)
    packets += len(real_packets)
    events.extend(target.events())
    for block in syn_flood_blocks(FLOOD_FLOWS, block_rows=FLOOD_BLOCK_ROWS):
        for view in block.views():
            target.ingest(view)
        packets += len(block)
        events.extend(target.events())
        if occupancy_probe is not None:
            peak = max(peak, occupancy_probe())
    target.close()
    events.extend(target.events())
    elapsed = time.perf_counter() - started
    return events, elapsed, packets, peak


def _closed_rows(events):
    """The partition-invariant event subset: organic FIN completions."""
    return {
        str(event.result.key): (event.result.packet_count, event.result.score)
        for event in events
        if event.completed_by is CompletionReason.CLOSED
    }


def _drained(events):
    return [e for e in events if e.completed_by is CompletionReason.DRAIN]


def _assert_equivalent(reference, candidate, label):
    assert reference.keys() == candidate.keys(), (
        f"{label}: CLOSED connection sets differ "
        f"({len(reference)} vs {len(candidate)})"
    )
    for key, (packets, score) in reference.items():
        other_packets, other_score = candidate[key]
        assert packets == other_packets, (label, key, packets, other_packets)
        assert abs(score - other_score) <= SCORE_TOLERANCE, (
            label,
            key,
            score,
            other_score,
        )


def test_partitioned_replay_throughput(partition_model):
    clap, model_dir = partition_model
    real_packets = _real_packets()
    rows = []

    # ----- unpartitioned reference ------------------------------------------
    single = ParallelStreamingDetector(
        clap,
        workers=1,
        idle_timeout=1e9,
        close_grace=CLOSE_GRACE,
        max_flows=MAX_FLOWS,
        drop_policy=_drop_policy(),
    )
    single_events, single_seconds, replay_packets, single_peak = _replay(
        single, real_packets, occupancy_probe=lambda: single.active_flows
    )
    single_snapshot = single.metrics_snapshot()
    baseline = _closed_rows(single_events)
    assert baseline, "benign phase produced no organic completions"
    assert len(_drained(single_events)) <= MAX_FLOWS
    assert single_snapshot["capacity_drops"] > 0
    rows.append(("single (in-process)", single_seconds, [single_peak]))

    results = {}
    for instances in (1, 2, 4):
        partitioner = FlowPartitioner(
            model_dir,
            instances=instances,
            config=InstanceConfig(
                workers=1,
                idle_timeout=1e9,
                close_grace=CLOSE_GRACE,
                max_flows=MAX_FLOWS,
                drop_policy=_drop_policy(),
            ),
        )
        events, seconds, packets, _ = _replay(partitioner, real_packets)
        assert packets == replay_packets
        peaks = partitioner.peak_occupancy()
        _assert_equivalent(baseline, _closed_rows(events), f"instances={instances}")
        drained = _drained(events)
        # The flood residue drains against per-instance budgets: bounded by
        # the (rounded-up) global budget, never the whole flood.
        budget = -(-MAX_FLOWS // instances)
        assert len(drained) <= budget * instances
        assert all(peak <= budget for peak in peaks), (instances, peaks, budget)
        capacity_drops = sum(
            int(report["metrics"]["capacity_drops"])
            for report in partitioner.instance_reports
        )
        assert capacity_drops > 0
        assert capacity_drops + len(drained) >= FLOOD_FLOWS
        results[instances] = seconds
        rows.append((f"instances={instances}", seconds, peaks))

    # ----- table -------------------------------------------------------------
    cores = host_cores()
    lines = [
        f"{'Topology':<22} {'Packets':>10} {'Seconds':>9} {'Pkt/s':>10} "
        f"{'Peak occupancy per instance':<30}",
        "-" * 85,
    ]
    for label, seconds, peaks in rows:
        lines.append(
            f"{label:<22} {replay_packets:>10,} {seconds:>9.2f} "
            f"{replay_packets / seconds:>10,.0f} {str(peaks):<30}"
        )
    lines.append("")
    lines.append(
        f"workload: {REAL_CONNECTIONS} benign generator connections"
        f" ({len(real_packets):,} packets) + {FLOOD_FLOWS:,}-flow SYN flood"
        f" (one flow per packet), max_flows={MAX_FLOWS},"
        f" DropPolicy(mode='drop'), host with {cores} usable core(s)."
    )
    lines.append(
        "equivalence: CLOSED (organic FIN) connections agree across every"
        " topology — keys, packet counts and scores within 1e-9.  The"
        " drained flood residue (<= max_flows flows still tracked at close)"
        " is partition-dependent by design: per-instance FIFO capacity"
        " eviction, like the sharded runtime's per-worker max_flows split,"
        " does not promise which residents survive — only how many."
    )
    if cores == 1:
        lines.append(
            "single-core host: instance processes time-slice one core, so"
            " multi-instance rows measure fan-out + wire overhead, not"
            " speed-up (Table-3 convention: the >single assertion is gated"
            " on cores > 1)."
        )
    write_result("partitioned_throughput.txt", "\n".join(lines))

    if cores > 1:
        # Real parallel hardware: fanning out across instance processes must
        # beat the single in-process detector on the flood-heavy replay.
        best_multi = min(results[2], results[4])
        assert best_multi < single_seconds
    else:
        # Single core: only guard that the socket hop keeps overhead sane.
        assert results[1] < single_seconds * 25
